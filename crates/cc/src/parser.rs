//! Recursive-descent parser for MiniC.

use crate::ast::*;
use crate::error::{CompileError, Loc};
use crate::lexer::{lex, Tok, Token};

/// Parses a MiniC translation unit.
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
pub fn parse(src: &str) -> Result<Module, CompileError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.module()
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn loc(&self) -> Loc {
        self.toks[self.pos].loc
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<(), CompileError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(CompileError::new(
                self.loc(),
                format!("expected {what}, found {:?}", self.peek()),
            ))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, CompileError> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => Err(CompileError::new(
                self.loc(),
                format!("expected {what}, found {other:?}"),
            )),
        }
    }

    fn scalar_type(&mut self) -> Result<Option<Scalar>, CompileError> {
        if self.eat(&Tok::KwInt) {
            Ok(Some(Scalar::Int))
        } else if self.eat(&Tok::KwU32) {
            Ok(Some(Scalar::U32))
        } else {
            Ok(None)
        }
    }

    fn module(&mut self) -> Result<Module, CompileError> {
        let mut module = Module::default();
        while *self.peek() != Tok::Eof {
            self.eat(&Tok::KwConst);
            let loc = self.loc();
            if self.eat(&Tok::KwVoid) {
                let name = self.ident("function name")?;
                module.funcs.push(self.func(name, None, loc)?);
                continue;
            }
            let Some(scalar) = self.scalar_type()? else {
                return Err(CompileError::new(
                    loc,
                    format!("expected declaration, found {:?}", self.peek()),
                ));
            };
            let mut ty = Type::Scalar(scalar);
            if self.eat(&Tok::Star) {
                ty = Type::Ptr(scalar);
            }
            let name = self.ident("name")?;
            if *self.peek() == Tok::LParen {
                module.funcs.push(self.func(name, Some(ty), loc)?);
            } else {
                if matches!(ty, Type::Ptr(_)) {
                    return Err(CompileError::new(loc, "global pointers are not supported"));
                }
                module.globals.push(self.global(name, scalar, loc)?);
            }
        }
        Ok(module)
    }

    fn global(&mut self, name: String, scalar: Scalar, loc: Loc) -> Result<Global, CompileError> {
        let mut len = None;
        if self.eat(&Tok::LBracket) {
            len = Some(self.const_int()? as usize);
            self.expect(&Tok::RBracket, "`]`")?;
        }
        let mut init = Vec::new();
        if self.eat(&Tok::Assign) {
            if self.eat(&Tok::LBrace) {
                if len.is_none() {
                    return Err(CompileError::new(loc, "brace initializer on scalar global"));
                }
                loop {
                    init.push(self.const_int()?);
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                    // Allow trailing comma.
                    if *self.peek() == Tok::RBrace {
                        break;
                    }
                }
                self.expect(&Tok::RBrace, "`}`")?;
            } else {
                init.push(self.const_int()?);
            }
        }
        if let Some(n) = len {
            if init.len() > n {
                return Err(CompileError::new(
                    loc,
                    format!("{} initializers for array of {}", init.len(), n),
                ));
            }
        }
        self.expect(&Tok::Semi, "`;`")?;
        Ok(Global {
            name,
            scalar,
            len,
            init,
            loc,
        })
    }

    fn const_int(&mut self) -> Result<i64, CompileError> {
        let neg = self.eat(&Tok::Minus);
        match self.bump() {
            Tok::Int(v) => Ok(if neg { v.wrapping_neg() } else { v }),
            other => Err(CompileError::new(
                self.loc(),
                format!("expected integer constant, found {other:?}"),
            )),
        }
    }

    fn func(&mut self, name: String, ret: Option<Type>, loc: Loc) -> Result<Func, CompileError> {
        self.expect(&Tok::LParen, "`(`")?;
        let mut params = Vec::new();
        if !self.eat(&Tok::RParen) {
            loop {
                self.eat(&Tok::KwConst);
                let ploc = self.loc();
                let Some(scalar) = self.scalar_type()? else {
                    return Err(CompileError::new(ploc, "expected parameter type"));
                };
                let ty = if self.eat(&Tok::Star) {
                    Type::Ptr(scalar)
                } else {
                    Type::Scalar(scalar)
                };
                let pname = self.ident("parameter name")?;
                params.push((pname, ty));
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RParen, "`)`")?;
        }
        let body = self.block()?;
        Ok(Func {
            name,
            ret,
            params,
            body,
            loc,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect(&Tok::LBrace, "`{`")?;
        let mut stmts = Vec::new();
        while !self.eat(&Tok::RBrace) {
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn block_or_stmt(&mut self) -> Result<Vec<Stmt>, CompileError> {
        if *self.peek() == Tok::LBrace {
            self.block()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let loc = self.loc();
        match self.peek().clone() {
            Tok::KwConst | Tok::KwInt | Tok::KwU32 => self.decl(),
            Tok::KwIf => {
                self.bump();
                self.expect(&Tok::LParen, "`(`")?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                let then_blk = self.block_or_stmt()?;
                let else_blk = if self.eat(&Tok::KwElse) {
                    if *self.peek() == Tok::KwIf {
                        vec![self.stmt()?]
                    } else {
                        self.block_or_stmt()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_blk,
                    else_blk,
                })
            }
            Tok::KwWhile => {
                self.bump();
                self.expect(&Tok::LParen, "`(`")?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                let body = self.block_or_stmt()?;
                Ok(Stmt::While { cond, body })
            }
            Tok::KwFor => {
                self.bump();
                self.expect(&Tok::LParen, "`(`")?;
                let init = if self.eat(&Tok::Semi) {
                    None
                } else {
                    let s = self.simple_stmt_no_semi()?;
                    self.expect(&Tok::Semi, "`;`")?;
                    Some(Box::new(s))
                };
                let cond = if *self.peek() == Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Tok::Semi, "`;`")?;
                let step = if *self.peek() == Tok::RParen {
                    None
                } else {
                    Some(Box::new(self.simple_stmt_no_semi()?))
                };
                self.expect(&Tok::RParen, "`)`")?;
                let body = self.block_or_stmt()?;
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                })
            }
            Tok::KwReturn => {
                self.bump();
                let value = if *self.peek() == Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Tok::Semi, "`;`")?;
                Ok(Stmt::Return { value, loc })
            }
            Tok::KwBreak => {
                self.bump();
                self.expect(&Tok::Semi, "`;`")?;
                Ok(Stmt::Break(loc))
            }
            Tok::KwContinue => {
                self.bump();
                self.expect(&Tok::Semi, "`;`")?;
                Ok(Stmt::Continue(loc))
            }
            Tok::KwOut => {
                self.bump();
                self.expect(&Tok::LParen, "`(`")?;
                let e = self.expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                self.expect(&Tok::Semi, "`;`")?;
                Ok(Stmt::Out(e, loc))
            }
            _ => {
                let s = self.simple_stmt_no_semi()?;
                self.expect(&Tok::Semi, "`;`")?;
                Ok(s)
            }
        }
    }

    fn decl(&mut self) -> Result<Stmt, CompileError> {
        let loc = self.loc();
        self.eat(&Tok::KwConst);
        let Some(scalar) = self.scalar_type()? else {
            return Err(CompileError::new(loc, "expected type"));
        };
        let ty = if self.eat(&Tok::Star) {
            Type::Ptr(scalar)
        } else {
            Type::Scalar(scalar)
        };
        let name = self.ident("variable name")?;
        let mut len = None;
        if self.eat(&Tok::LBracket) {
            if matches!(ty, Type::Ptr(_)) {
                return Err(CompileError::new(loc, "array of pointers not supported"));
            }
            len = Some(self.const_int()? as usize);
            self.expect(&Tok::RBracket, "`]`")?;
        }
        let init = if self.eat(&Tok::Assign) {
            if len.is_some() {
                return Err(CompileError::new(loc, "local arrays cannot be initialized"));
            }
            Some(self.expr()?)
        } else {
            None
        };
        self.expect(&Tok::Semi, "`;`")?;
        Ok(Stmt::Decl {
            name,
            ty,
            len,
            init,
            loc,
        })
    }

    /// Assignment or expression statement, without the trailing semicolon
    /// (shared between plain statements and `for` init/step clauses).
    fn simple_stmt_no_semi(&mut self) -> Result<Stmt, CompileError> {
        // A `for` init clause may also be a declaration.
        if matches!(self.peek(), Tok::KwInt | Tok::KwU32)
            || (*self.peek() == Tok::KwConst && matches!(self.peek2(), Tok::KwInt | Tok::KwU32))
        {
            // Declarations consume their own semicolon; rewind trick: parse
            // decl but it expects `;`. For simplicity, for-init declarations
            // are parsed here without `;` by inlining the logic.
            let loc = self.loc();
            self.eat(&Tok::KwConst);
            let Some(scalar) = self.scalar_type()? else {
                return Err(CompileError::new(loc, "expected type"));
            };
            let ty = if self.eat(&Tok::Star) {
                Type::Ptr(scalar)
            } else {
                Type::Scalar(scalar)
            };
            let name = self.ident("variable name")?;
            let init = if self.eat(&Tok::Assign) {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Stmt::Decl {
                name,
                ty,
                len: None,
                init,
                loc,
            });
        }
        let loc = self.loc();
        let e = self.expr()?;
        if self.eat(&Tok::Assign) {
            let value = self.expr()?;
            Ok(Stmt::Assign {
                target: e,
                value,
                loc,
            })
        } else {
            Ok(Stmt::ExprStmt(e))
        }
    }

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.bin_expr(0)
    }

    fn bin_expr(&mut self, min_prec: u8) -> Result<Expr, CompileError> {
        let mut lhs = self.unary()?;
        loop {
            let (op, prec) = match self.peek() {
                Tok::OrOr => (BinOp::LogOr, 1),
                Tok::AndAnd => (BinOp::LogAnd, 2),
                Tok::Pipe => (BinOp::Or, 3),
                Tok::Caret => (BinOp::Xor, 4),
                Tok::Amp => (BinOp::And, 5),
                Tok::EqEq => (BinOp::Eq, 6),
                Tok::Ne => (BinOp::Ne, 6),
                Tok::Lt => (BinOp::Lt, 7),
                Tok::Le => (BinOp::Le, 7),
                Tok::Gt => (BinOp::Gt, 7),
                Tok::Ge => (BinOp::Ge, 7),
                Tok::Shl => (BinOp::Shl, 8),
                Tok::Shr => (BinOp::Shr, 8),
                Tok::Plus => (BinOp::Add, 9),
                Tok::Minus => (BinOp::Sub, 9),
                Tok::Star => (BinOp::Mul, 10),
                Tok::Slash => (BinOp::Div, 10),
                Tok::Percent => (BinOp::Rem, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            let loc = self.loc();
            self.bump();
            let rhs = self.bin_expr(prec + 1)?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                loc,
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        let loc = self.loc();
        let op = match self.peek() {
            Tok::Minus => Some(UnOp::Neg),
            Tok::Bang => Some(UnOp::Not),
            Tok::Tilde => Some(UnOp::BitNot),
            Tok::Star => Some(UnOp::Deref),
            Tok::Amp => Some(UnOp::AddrOf),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let expr = self.unary()?;
            return Ok(Expr::Unary {
                op,
                expr: Box::new(expr),
                loc,
            });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.primary()?;
        loop {
            let loc = self.loc();
            if self.eat(&Tok::LBracket) {
                let index = self.expr()?;
                self.expect(&Tok::RBracket, "`]`")?;
                e = Expr::Index {
                    base: Box::new(e),
                    index: Box::new(index),
                    loc,
                };
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        let loc = self.loc();
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::Num(v, loc))
            }
            Tok::Ident(name) => {
                self.bump();
                if self.eat(&Tok::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                        self.expect(&Tok::RParen, "`)`")?;
                    }
                    Ok(Expr::Call { name, args, loc })
                } else {
                    Ok(Expr::Var(name, loc))
                }
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(e)
            }
            other => Err(CompileError::new(
                loc,
                format!("expected expression, found {other:?}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_program() {
        let m = parse("void main() { out(1); }").unwrap();
        assert_eq!(m.funcs.len(), 1);
        assert_eq!(m.funcs[0].name, "main");
        assert!(m.funcs[0].ret.is_none());
    }

    #[test]
    fn parses_globals() {
        let m = parse("int n = 5; u32 tab[4] = {1, 2, 3, 4}; int zeroed[8];").unwrap();
        assert_eq!(m.globals.len(), 3);
        assert_eq!(m.globals[0].init, vec![5]);
        assert_eq!(m.globals[1].len, Some(4));
        assert_eq!(m.globals[1].scalar, Scalar::U32);
        assert!(m.globals[2].init.is_empty());
    }

    #[test]
    fn precedence_mul_over_add() {
        let m = parse("int f() { return 1 + 2 * 3; }").unwrap();
        let Stmt::Return { value: Some(e), .. } = &m.funcs[0].body[0] else {
            panic!("expected return");
        };
        let Expr::Binary {
            op: BinOp::Add,
            rhs,
            ..
        } = e
        else {
            panic!("expected add at top: {e:?}");
        };
        assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn parses_control_flow() {
        let src = "
            int f(int n) {
                int s = 0;
                for (int i = 0; i < n; i = i + 1) {
                    if (i % 2 == 0) { s = s + i; } else s = s - 1;
                    while (s > 100) { s = s / 2; break; }
                }
                return s;
            }";
        let m = parse(src).unwrap();
        assert_eq!(m.funcs[0].params.len(), 1);
    }

    #[test]
    fn parses_pointers_and_arrays() {
        let src = "
            void f(int *p, u32 *q) {
                int a[10];
                *p = a[3];
                p[1] = 4;
                q[0] = 7;
                int *r = &a[2];
                *r = 9;
            }";
        let m = parse(src).unwrap();
        assert_eq!(m.funcs[0].params[0].1, Type::Ptr(Scalar::Int));
    }

    #[test]
    fn negative_constants_in_globals() {
        let m = parse("int k = -7; int a[2] = {-1, -2};").unwrap();
        assert_eq!(m.globals[0].init, vec![-7]);
        assert_eq!(m.globals[1].init, vec![-1, -2]);
    }

    #[test]
    fn rejects_syntax_errors() {
        assert!(parse("void main() { out(1) }").is_err());
        assert!(parse("int f( { }").is_err());
        assert!(parse("int x = ;").is_err());
        assert!(parse("void main() { 1 + ; }").is_err());
    }

    #[test]
    fn rejects_too_many_initializers() {
        assert!(parse("int a[2] = {1,2,3};").is_err());
    }

    #[test]
    fn else_if_chains() {
        let src =
            "int sign(int x) { if (x > 0) return 1; else if (x < 0) return -1; else return 0; }";
        assert!(parse(src).is_ok());
    }

    #[test]
    fn logical_operators_lowest_precedence() {
        let m = parse("int f(int a, int b) { return a < 1 && b > 2 || a == b; }").unwrap();
        let Stmt::Return { value: Some(e), .. } = &m.funcs[0].body[0] else {
            panic!();
        };
        assert!(matches!(
            e,
            Expr::Binary {
                op: BinOp::LogOr,
                ..
            }
        ));
    }
}
