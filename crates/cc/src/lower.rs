//! AST → IR lowering with type checking.
//!
//! Lowering is deliberately naive — every scalar local lives in a stack slot
//! and every use goes through a slot load — so that the unoptimized IR has
//! the memory-traffic profile of `gcc -O0`. All cleverness lives in the
//! optimization passes.

use crate::ast::{BinOp as AstBin, Expr, Func, Module, Scalar, Stmt, Type, UnOp};
use crate::error::{CompileError, Loc};
use crate::ir::*;
use softerr_isa::Profile;
use std::collections::HashMap;

/// Value type of a lowered expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VTy {
    Int,
    U32,
    Ptr(Scalar),
}

impl VTy {
    fn width(self) -> Width {
        match self {
            VTy::Int | VTy::Ptr(_) => Width::Word,
            VTy::U32 => Width::U32,
        }
    }

    fn of(ty: Type) -> VTy {
        match ty {
            Type::Scalar(Scalar::Int) => VTy::Int,
            Type::Scalar(Scalar::U32) => VTy::U32,
            Type::Ptr(s) => VTy::Ptr(s),
        }
    }

    fn scalar_width(s: Scalar) -> Width {
        match s {
            Scalar::Int => Width::Word,
            Scalar::U32 => Width::U32,
        }
    }
}

#[derive(Debug, Clone)]
struct LocalVar {
    slot: SlotId,
    vty: VTy,
    is_array: bool,
}

#[derive(Debug, Clone)]
struct GlobalVar {
    vty: VTy,
    is_array: bool,
}

#[derive(Debug, Clone)]
struct Signature {
    params: Vec<VTy>,
    ret: Option<VTy>,
}

/// Lowers a parsed module to IR for the given target profile.
///
/// Performs full semantic checking: name resolution, type checking with the
/// implicit `int`/`u32` conversions, lvalue validation, and ABI limits
/// (parameter counts must fit the profile's argument registers).
///
/// # Errors
///
/// Returns the first semantic error found.
pub fn lower(module: &Module, profile: Profile) -> Result<IrModule, CompileError> {
    // Layout globals.
    let word = profile.word_bytes();
    let mut globals = Vec::new();
    let mut global_env: HashMap<String, GlobalVar> = HashMap::new();
    let mut offset = 0u64;
    for g in &module.globals {
        if global_env.contains_key(&g.name) {
            return Err(CompileError::new(
                g.loc,
                format!("duplicate global `{}`", g.name),
            ));
        }
        let elem = VTy::scalar_width(g.scalar);
        let elem_bytes = elem.bytes(word);
        offset = offset.next_multiple_of(8);
        let len = g.len.unwrap_or(1);
        if len == 0 {
            return Err(CompileError::new(g.loc, "zero-length array"));
        }
        globals.push(GlobalLayout {
            name: g.name.clone(),
            elem,
            elem_bytes,
            len,
            init: g.init.clone(),
            offset,
        });
        global_env.insert(
            g.name.clone(),
            GlobalVar {
                vty: match (g.scalar, g.len) {
                    (s, Some(_)) => VTy::Ptr(s),
                    (Scalar::Int, None) => VTy::Int,
                    (Scalar::U32, None) => VTy::U32,
                },
                is_array: g.len.is_some(),
            },
        );
        offset += elem_bytes * len as u64;
    }
    let data_size = offset;

    // Collect signatures.
    let mut sigs: HashMap<String, Signature> = HashMap::new();
    let max_params = profile.arg_regs().len();
    for f in &module.funcs {
        if sigs.contains_key(&f.name) {
            return Err(CompileError::new(
                f.loc,
                format!("duplicate function `{}`", f.name),
            ));
        }
        if global_env.contains_key(&f.name) {
            return Err(CompileError::new(
                f.loc,
                format!("`{}` is both a global and a function", f.name),
            ));
        }
        if f.params.len() > max_params {
            return Err(CompileError::new(
                f.loc,
                format!(
                    "function `{}` has {} parameters; the {profile} ABI allows at most {max_params}",
                    f.name,
                    f.params.len()
                ),
            ));
        }
        sigs.insert(
            f.name.clone(),
            Signature {
                params: f.params.iter().map(|(_, t)| VTy::of(*t)).collect(),
                ret: f.ret.map(VTy::of),
            },
        );
    }
    match sigs.get("main") {
        None => {
            return Err(CompileError::new(
                Loc::default(),
                "no `main` function defined",
            ))
        }
        Some(sig) => {
            if !sig.params.is_empty() || sig.ret.is_some() {
                return Err(CompileError::new(
                    Loc::default(),
                    "`main` must be `void main()` with no parameters",
                ));
            }
        }
    }

    let mut funcs = Vec::new();
    for f in &module.funcs {
        let ctx = FuncLower {
            profile,
            globals: &global_env,
            sigs: &sigs,
            func: IrFunc {
                name: f.name.clone(),
                params: Vec::new(),
                ret: sigs[&f.name].ret.map(VTy::width),
                blocks: vec![Block {
                    insts: Vec::new(),
                    term: Term::Ret(None),
                }],
                slots: Vec::new(),
                next_vreg: 0,
            },
            cur: 0,
            scopes: Vec::new(),
            loops: Vec::new(),
            ret_ty: sigs[&f.name].ret,
            terminated: false,
        };
        funcs.push(ctx.lower_func(f)?);
    }

    Ok(IrModule {
        funcs,
        globals,
        data_size,
    })
}

struct FuncLower<'a> {
    profile: Profile,
    globals: &'a HashMap<String, GlobalVar>,
    sigs: &'a HashMap<String, Signature>,
    func: IrFunc,
    cur: BlockId,
    scopes: Vec<HashMap<String, LocalVar>>,
    /// Stack of (continue target, break target).
    loops: Vec<(BlockId, BlockId)>,
    ret_ty: Option<VTy>,
    terminated: bool,
}

impl<'a> FuncLower<'a> {
    fn word(&self) -> u64 {
        self.profile.word_bytes()
    }

    fn emit(&mut self, inst: Inst) {
        if !self.terminated {
            self.func.blocks[self.cur].insts.push(inst);
        }
    }

    fn new_block(&mut self) -> BlockId {
        self.func.blocks.push(Block {
            insts: Vec::new(),
            term: Term::Ret(None),
        });
        self.func.blocks.len() - 1
    }

    fn terminate(&mut self, term: Term) {
        if !self.terminated {
            self.func.blocks[self.cur].term = term;
            self.terminated = true;
        }
    }

    /// Switches emission to `block` (used after terminating the current one).
    fn start_block(&mut self, block: BlockId) {
        self.cur = block;
        self.terminated = false;
    }

    fn fresh(&mut self) -> VReg {
        self.func.fresh_vreg()
    }

    fn new_slot(&mut self, name: &str, size: u64, elem: Width, addr_taken: bool) -> SlotId {
        self.func.slots.push(SlotInfo {
            size,
            elem,
            addr_taken,
            name: name.to_string(),
        });
        self.func.slots.len() - 1
    }

    fn lookup(&self, name: &str) -> Option<&LocalVar> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn declare(
        &mut self,
        loc: Loc,
        name: &str,
        vty: VTy,
        is_array: bool,
        array_len: Option<usize>,
    ) -> Result<SlotId, CompileError> {
        let scope = self.scopes.last_mut().expect("scope stack empty");
        if scope.contains_key(name) {
            return Err(CompileError::new(
                loc,
                format!("duplicate variable `{name}` in scope"),
            ));
        }
        let word = self.profile.word_bytes();
        let (size, elem, addr_taken) = if let Some(n) = array_len {
            let elem = match vty {
                VTy::Ptr(s) => VTy::scalar_width(s),
                other => other.width(),
            };
            (elem.bytes(word) * n as u64, elem, true)
        } else {
            (word, vty.width(), false)
        };
        let slot = self.new_slot(name, size, elem, addr_taken);
        self.scopes.last_mut().unwrap().insert(
            name.to_string(),
            LocalVar {
                slot,
                vty,
                is_array,
            },
        );
        Ok(slot)
    }

    fn lower_func(mut self, f: &Func) -> Result<IrFunc, CompileError> {
        self.scopes.push(HashMap::new());
        // Parameters: a vreg each (ABI order), stored into a dedicated slot so
        // that unoptimized code spills them exactly like gcc -O0 does.
        for (name, ty) in &f.params {
            let vty = VTy::of(*ty);
            let v = self.fresh();
            self.func.params.push((v, vty.width()));
            let slot = self.declare(f.loc, name, vty, false, None)?;
            self.emit(Inst::StoreSlot {
                w: vty.width(),
                slot,
                src: Operand::V(v),
            });
        }
        self.lower_block(&f.body)?;
        // Implicit return at the end of the body.
        if !self.terminated {
            let term = match self.ret_ty {
                None => Term::Ret(None),
                Some(_) => Term::Ret(Some(Operand::C(0))),
            };
            self.terminate(term);
        }
        self.scopes.pop();
        Ok(self.func)
    }

    fn lower_block(&mut self, stmts: &[Stmt]) -> Result<(), CompileError> {
        self.scopes.push(HashMap::new());
        for s in stmts {
            self.lower_stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn lower_stmt(&mut self, stmt: &Stmt) -> Result<(), CompileError> {
        match stmt {
            Stmt::Decl {
                name,
                ty,
                len,
                init,
                loc,
            } => {
                let vty = match (ty, len) {
                    (Type::Scalar(s), Some(_)) => VTy::Ptr(*s),
                    (t, _) => VTy::of(*t),
                };
                let init_val = init.as_ref().map(|e| self.lower_expr(e)).transpose()?;
                let slot = self.declare(*loc, name, vty, len.is_some(), *len)?;
                if let Some((op, from)) = init_val {
                    let op = self.convert(op, from, vty, *loc)?;
                    self.emit(Inst::StoreSlot {
                        w: vty.width(),
                        slot,
                        src: op,
                    });
                }
                Ok(())
            }
            Stmt::Assign { target, value, loc } => {
                let (op, from) = self.lower_expr(value)?;
                let lv = self.lower_lvalue(target)?;
                let op = self.convert(op, from, lv.vty, *loc)?;
                match lv.place {
                    Place::Slot(slot) => self.emit(Inst::StoreSlot {
                        w: lv.vty.width(),
                        slot,
                        src: op,
                    }),
                    Place::Mem { addr, off } => self.emit(Inst::Store {
                        w: lv.vty.width(),
                        src: op,
                        addr,
                        off,
                    }),
                }
                Ok(())
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let tb = self.new_block();
                let fb = self.new_block();
                let join = self.new_block();
                self.lower_cond(cond, tb, fb)?;
                self.start_block(tb);
                self.lower_block(then_blk)?;
                self.terminate(Term::Jmp(join));
                self.start_block(fb);
                self.lower_block(else_blk)?;
                self.terminate(Term::Jmp(join));
                self.start_block(join);
                Ok(())
            }
            Stmt::While { cond, body } => {
                let header = self.new_block();
                let body_bb = self.new_block();
                let exit = self.new_block();
                self.terminate(Term::Jmp(header));
                self.start_block(header);
                self.lower_cond(cond, body_bb, exit)?;
                self.start_block(body_bb);
                self.loops.push((header, exit));
                self.lower_block(body)?;
                self.loops.pop();
                self.terminate(Term::Jmp(header));
                self.start_block(exit);
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                if let Some(s) = init {
                    self.lower_stmt(s)?;
                }
                let header = self.new_block();
                let body_bb = self.new_block();
                let step_bb = self.new_block();
                let exit = self.new_block();
                self.terminate(Term::Jmp(header));
                self.start_block(header);
                match cond {
                    Some(c) => self.lower_cond(c, body_bb, exit)?,
                    None => self.terminate(Term::Jmp(body_bb)),
                }
                self.start_block(body_bb);
                self.loops.push((step_bb, exit));
                self.lower_block(body)?;
                self.loops.pop();
                self.terminate(Term::Jmp(step_bb));
                self.start_block(step_bb);
                if let Some(s) = step {
                    self.lower_stmt(s)?;
                }
                self.terminate(Term::Jmp(header));
                self.start_block(exit);
                self.scopes.pop();
                Ok(())
            }
            Stmt::Return { value, loc } => {
                match (&self.ret_ty, value) {
                    (None, None) => self.terminate(Term::Ret(None)),
                    (None, Some(_)) => {
                        return Err(CompileError::new(*loc, "void function returns a value"))
                    }
                    (Some(_), None) => return Err(CompileError::new(*loc, "missing return value")),
                    (Some(rt), Some(e)) => {
                        let rt = *rt;
                        let (op, from) = self.lower_expr(e)?;
                        let op = self.convert(op, from, rt, *loc)?;
                        self.terminate(Term::Ret(Some(op)));
                    }
                }
                // Statements after a return are unreachable; give them a
                // fresh block so lowering can continue.
                let dead = self.new_block();
                self.start_block(dead);
                Ok(())
            }
            Stmt::Break(loc) => {
                let Some(&(_, brk)) = self.loops.last() else {
                    return Err(CompileError::new(*loc, "`break` outside a loop"));
                };
                self.terminate(Term::Jmp(brk));
                let dead = self.new_block();
                self.start_block(dead);
                Ok(())
            }
            Stmt::Continue(loc) => {
                let Some(&(cont, _)) = self.loops.last() else {
                    return Err(CompileError::new(*loc, "`continue` outside a loop"));
                };
                self.terminate(Term::Jmp(cont));
                let dead = self.new_block();
                self.start_block(dead);
                Ok(())
            }
            Stmt::ExprStmt(e) => {
                match e {
                    Expr::Call { .. } => {
                        self.lower_call(e, true)?;
                    }
                    other => {
                        // Evaluate for effect (there are none beyond calls,
                        // but this keeps the language regular).
                        self.lower_expr(other)?;
                    }
                }
                Ok(())
            }
            Stmt::Out(e, _loc) => {
                let (op, _) = self.lower_expr(e)?;
                self.emit(Inst::Out { src: op });
                Ok(())
            }
        }
    }

    /// Unifies two scalar operand types for a binary operation.
    fn unify(
        &mut self,
        a: (Operand, VTy),
        b: (Operand, VTy),
        loc: Loc,
    ) -> Result<(Operand, Operand, VTy), CompileError> {
        match (a.1, b.1) {
            (VTy::Int, VTy::Int) => Ok((a.0, b.0, VTy::Int)),
            (VTy::U32, VTy::U32) => Ok((a.0, b.0, VTy::U32)),
            (VTy::Int, VTy::U32) => {
                let ca = self.convert(a.0, VTy::Int, VTy::U32, loc)?;
                Ok((ca, b.0, VTy::U32))
            }
            (VTy::U32, VTy::Int) => {
                let cb = self.convert(b.0, VTy::Int, VTy::U32, loc)?;
                Ok((a.0, cb, VTy::U32))
            }
            (VTy::Ptr(s), VTy::Ptr(t)) if s == t => Ok((a.0, b.0, VTy::Ptr(s))),
            (x, y) => Err(CompileError::new(
                loc,
                format!("type mismatch: {x:?} vs {y:?}"),
            )),
        }
    }

    /// Converts an operand between scalar types.
    fn convert(
        &mut self,
        op: Operand,
        from: VTy,
        to: VTy,
        loc: Loc,
    ) -> Result<Operand, CompileError> {
        if from == to {
            return Ok(op);
        }
        match (from, to) {
            (VTy::Int, VTy::U32) => {
                if let Operand::C(c) = op {
                    return Ok(Operand::C(c as u32 as i64));
                }
                if self.profile == Profile::A32 {
                    // Registers are 32 bits wide; the mask is a no-op.
                    return Ok(op);
                }
                let dst = self.fresh();
                self.emit(Inst::Bin {
                    op: BinOp::And,
                    w: Width::Word,
                    dst,
                    a: op,
                    b: Operand::C(0xFFFF_FFFF),
                });
                Ok(Operand::V(dst))
            }
            // A zero-extended u32 reinterpreted as a (non-negative) int.
            (VTy::U32, VTy::Int) => Ok(op),
            (x, y) => Err(CompileError::new(
                loc,
                format!("cannot convert {x:?} to {y:?}"),
            )),
        }
    }

    fn lower_expr(&mut self, e: &Expr) -> Result<(Operand, VTy), CompileError> {
        match e {
            Expr::Num(v, _) => Ok((Operand::C(*v), VTy::Int)),
            Expr::Var(name, loc) => {
                if let Some(var) = self.lookup(name).cloned() {
                    if var.is_array {
                        let elem = match var.vty {
                            VTy::Ptr(s) => s,
                            _ => unreachable!("arrays are typed as pointers"),
                        };
                        let dst = self.fresh();
                        self.emit(Inst::SlotAddr {
                            dst,
                            slot: var.slot,
                        });
                        return Ok((Operand::V(dst), VTy::Ptr(elem)));
                    }
                    let dst = self.fresh();
                    self.emit(Inst::LoadSlot {
                        w: var.vty.width(),
                        dst,
                        slot: var.slot,
                    });
                    return Ok((Operand::V(dst), var.vty));
                }
                if let Some(g) = self.globals.get(name).cloned() {
                    let addr = self.fresh();
                    self.emit(Inst::GlobalAddr {
                        dst: addr,
                        name: name.clone(),
                    });
                    if g.is_array {
                        return Ok((Operand::V(addr), g.vty));
                    }
                    let dst = self.fresh();
                    self.emit(Inst::Load {
                        w: g.vty.width(),
                        dst,
                        addr: Operand::V(addr),
                        off: 0,
                    });
                    return Ok((Operand::V(dst), g.vty));
                }
                Err(CompileError::new(
                    *loc,
                    format!("unknown variable `{name}`"),
                ))
            }
            Expr::Unary { op, expr, loc } => match op {
                UnOp::Neg => {
                    let (v, t) = self.lower_expr(expr)?;
                    if matches!(t, VTy::Ptr(_)) {
                        return Err(CompileError::new(*loc, "cannot negate a pointer"));
                    }
                    if let Operand::C(c) = v {
                        return Ok((Operand::C(c.wrapping_neg()), t));
                    }
                    let dst = self.fresh();
                    self.emit(Inst::Bin {
                        op: BinOp::Sub,
                        w: t.width(),
                        dst,
                        a: Operand::C(0),
                        b: v,
                    });
                    Ok((Operand::V(dst), t))
                }
                UnOp::Not => {
                    let (v, _) = self.lower_expr(expr)?;
                    let dst = self.fresh();
                    self.emit(Inst::Cmp {
                        cond: Cond::Eq,
                        dst,
                        a: v,
                        b: Operand::C(0),
                    });
                    Ok((Operand::V(dst), VTy::Int))
                }
                UnOp::BitNot => {
                    let (v, t) = self.lower_expr(expr)?;
                    if matches!(t, VTy::Ptr(_)) {
                        return Err(CompileError::new(*loc, "cannot complement a pointer"));
                    }
                    let dst = self.fresh();
                    self.emit(Inst::Bin {
                        op: BinOp::Xor,
                        w: t.width(),
                        dst,
                        a: v,
                        b: Operand::C(-1),
                    });
                    Ok((Operand::V(dst), t))
                }
                UnOp::Deref => {
                    let (v, t) = self.lower_expr(expr)?;
                    let VTy::Ptr(s) = t else {
                        return Err(CompileError::new(*loc, "dereference of a non-pointer"));
                    };
                    let w = VTy::scalar_width(s);
                    let dst = self.fresh();
                    self.emit(Inst::Load {
                        w,
                        dst,
                        addr: v,
                        off: 0,
                    });
                    Ok((Operand::V(dst), VTy::of(Type::Scalar(s))))
                }
                UnOp::AddrOf => {
                    let lv = self.lower_lvalue(expr)?;
                    let s = match lv.vty {
                        VTy::Int => Scalar::Int,
                        VTy::U32 => Scalar::U32,
                        VTy::Ptr(_) => {
                            return Err(CompileError::new(
                                *loc,
                                "address of a pointer variable is not supported",
                            ))
                        }
                    };
                    let addr = match lv.place {
                        Place::Slot(slot) => {
                            self.func.slots[slot].addr_taken = true;
                            let dst = self.fresh();
                            self.emit(Inst::SlotAddr { dst, slot });
                            Operand::V(dst)
                        }
                        Place::Mem { addr, off } => {
                            if off == 0 {
                                addr
                            } else {
                                let dst = self.fresh();
                                self.emit(Inst::Bin {
                                    op: BinOp::Add,
                                    w: Width::Word,
                                    dst,
                                    a: addr,
                                    b: Operand::C(off),
                                });
                                Operand::V(dst)
                            }
                        }
                    };
                    Ok((addr, VTy::Ptr(s)))
                }
            },
            Expr::Binary { op, lhs, rhs, loc } => self.lower_binary(*op, lhs, rhs, *loc),
            Expr::Call { .. } => {
                let (op, ty) = self.lower_call(e, false)?;
                Ok((op.expect("non-void call"), ty.expect("non-void call type")))
            }
            Expr::Index { base, index, loc } => {
                let (addr, s) = self.lower_index_addr(base, index, *loc)?;
                let w = VTy::scalar_width(s);
                let dst = self.fresh();
                self.emit(Inst::Load {
                    w,
                    dst,
                    addr,
                    off: 0,
                });
                Ok((Operand::V(dst), VTy::of(Type::Scalar(s))))
            }
        }
    }

    /// Computes the address of `base[index]`, returning it with the element
    /// scalar type.
    fn lower_index_addr(
        &mut self,
        base: &Expr,
        index: &Expr,
        loc: Loc,
    ) -> Result<(Operand, Scalar), CompileError> {
        let (b, bt) = self.lower_expr(base)?;
        let VTy::Ptr(s) = bt else {
            return Err(CompileError::new(loc, "indexing a non-array, non-pointer"));
        };
        let (i, it) = self.lower_expr(index)?;
        let i = self.convert(i, it, VTy::Int, loc)?;
        let size = VTy::scalar_width(s).bytes(self.word()) as i64;
        let scaled = match i {
            Operand::C(c) => Operand::C(c.wrapping_mul(size)),
            Operand::V(_) => {
                let dst = self.fresh();
                self.emit(Inst::Bin {
                    op: BinOp::Mul,
                    w: Width::Word,
                    dst,
                    a: i,
                    b: Operand::C(size),
                });
                Operand::V(dst)
            }
        };
        let addr = self.fresh();
        self.emit(Inst::Bin {
            op: BinOp::Add,
            w: Width::Word,
            dst: addr,
            a: b,
            b: scaled,
        });
        Ok((Operand::V(addr), s))
    }

    fn lower_binary(
        &mut self,
        op: AstBin,
        lhs: &Expr,
        rhs: &Expr,
        loc: Loc,
    ) -> Result<(Operand, VTy), CompileError> {
        // Short-circuit operators materialize a 0/1 via control flow.
        if matches!(op, AstBin::LogAnd | AstBin::LogOr) {
            let tb = self.new_block();
            let fb = self.new_block();
            let join = self.new_block();
            let dst = self.fresh();
            let e = Expr::Binary {
                op,
                lhs: Box::new(lhs.clone()),
                rhs: Box::new(rhs.clone()),
                loc,
            };
            self.lower_cond(&e, tb, fb)?;
            self.start_block(tb);
            self.emit(Inst::Copy {
                dst,
                src: Operand::C(1),
            });
            self.terminate(Term::Jmp(join));
            self.start_block(fb);
            self.emit(Inst::Copy {
                dst,
                src: Operand::C(0),
            });
            self.terminate(Term::Jmp(join));
            self.start_block(join);
            return Ok((Operand::V(dst), VTy::Int));
        }

        let a = self.lower_expr(lhs)?;
        let b = self.lower_expr(rhs)?;

        // Pointer arithmetic: ptr ± int (scaled by element size).
        if let (VTy::Ptr(s), other) = (a.1, b.1) {
            if matches!(op, AstBin::Add | AstBin::Sub) && !matches!(other, VTy::Ptr(_)) {
                let i = self.convert(b.0, b.1, VTy::Int, loc)?;
                return self.ptr_offset(op, a.0, i, s);
            }
        }
        if let (other, VTy::Ptr(s)) = (a.1, b.1) {
            if op == AstBin::Add && !matches!(other, VTy::Ptr(_)) {
                let i = self.convert(a.0, a.1, VTy::Int, loc)?;
                return self.ptr_offset(op, b.0, i, s);
            }
        }

        let (a_op, b_op, ty) = self.unify(a, b, loc)?;

        if let Some(cond) = comparison_cond(op, ty) {
            if matches!(ty, VTy::Ptr(_)) && !matches!(op, AstBin::Eq | AstBin::Ne) {
                // Pointer ordering uses unsigned comparison (already selected).
            }
            let dst = self.fresh();
            self.emit(Inst::Cmp {
                cond,
                dst,
                a: a_op,
                b: b_op,
            });
            return Ok((Operand::V(dst), VTy::Int));
        }

        if matches!(ty, VTy::Ptr(_)) {
            return Err(CompileError::new(
                loc,
                "arithmetic between two pointers is not supported",
            ));
        }

        let bin = match op {
            AstBin::Add => BinOp::Add,
            AstBin::Sub => BinOp::Sub,
            AstBin::Mul => BinOp::Mul,
            AstBin::Div => BinOp::Div {
                signed: ty == VTy::Int,
            },
            AstBin::Rem => BinOp::Rem {
                signed: ty == VTy::Int,
            },
            AstBin::And => BinOp::And,
            AstBin::Or => BinOp::Or,
            AstBin::Xor => BinOp::Xor,
            AstBin::Shl => BinOp::Shl,
            AstBin::Shr => BinOp::Shr {
                arith: ty == VTy::Int,
            },
            _ => unreachable!("comparisons handled above"),
        };
        let dst = self.fresh();
        self.emit(Inst::Bin {
            op: bin,
            w: ty.width(),
            dst,
            a: a_op,
            b: b_op,
        });
        Ok((Operand::V(dst), ty))
    }

    fn ptr_offset(
        &mut self,
        op: AstBin,
        ptr: Operand,
        idx: Operand,
        s: Scalar,
    ) -> Result<(Operand, VTy), CompileError> {
        let size = VTy::scalar_width(s).bytes(self.word()) as i64;
        let scaled = match idx {
            Operand::C(c) => Operand::C(c.wrapping_mul(size)),
            Operand::V(_) => {
                let dst = self.fresh();
                self.emit(Inst::Bin {
                    op: BinOp::Mul,
                    w: Width::Word,
                    dst,
                    a: idx,
                    b: Operand::C(size),
                });
                Operand::V(dst)
            }
        };
        let dst = self.fresh();
        self.emit(Inst::Bin {
            op: if op == AstBin::Add {
                BinOp::Add
            } else {
                BinOp::Sub
            },
            w: Width::Word,
            dst,
            a: ptr,
            b: scaled,
        });
        Ok((Operand::V(dst), VTy::Ptr(s)))
    }

    fn lower_call(
        &mut self,
        e: &Expr,
        stmt_ctx: bool,
    ) -> Result<(Option<Operand>, Option<VTy>), CompileError> {
        let Expr::Call { name, args, loc } = e else {
            unreachable!("lower_call on non-call");
        };
        let Some(sig) = self.sigs.get(name).cloned() else {
            return Err(CompileError::new(
                *loc,
                format!("unknown function `{name}`"),
            ));
        };
        if sig.params.len() != args.len() {
            return Err(CompileError::new(
                *loc,
                format!(
                    "`{name}` expects {} arguments, got {}",
                    sig.params.len(),
                    args.len()
                ),
            ));
        }
        let mut ops = Vec::with_capacity(args.len());
        for (arg, pty) in args.iter().zip(&sig.params) {
            let (op, aty) = self.lower_expr(arg)?;
            ops.push(self.convert(op, aty, *pty, *loc)?);
        }
        match sig.ret {
            None => {
                if !stmt_ctx {
                    return Err(CompileError::new(
                        *loc,
                        format!("void function `{name}` used as a value"),
                    ));
                }
                self.emit(Inst::Call {
                    dst: None,
                    callee: name.clone(),
                    args: ops,
                });
                Ok((None, None))
            }
            Some(rt) => {
                let dst = self.fresh();
                self.emit(Inst::Call {
                    dst: Some(dst),
                    callee: name.clone(),
                    args: ops,
                });
                Ok((Some(Operand::V(dst)), Some(rt)))
            }
        }
    }

    /// Lowers `e` as a condition, branching to `tb` when true and `fb`
    /// otherwise. Emits fused compare-and-branch for comparisons and
    /// short-circuit control flow for `&&`/`||`/`!`.
    fn lower_cond(&mut self, e: &Expr, tb: BlockId, fb: BlockId) -> Result<(), CompileError> {
        match e {
            Expr::Binary {
                op: AstBin::LogAnd,
                lhs,
                rhs,
                ..
            } => {
                let mid = self.new_block();
                self.lower_cond(lhs, mid, fb)?;
                self.start_block(mid);
                self.lower_cond(rhs, tb, fb)
            }
            Expr::Binary {
                op: AstBin::LogOr,
                lhs,
                rhs,
                ..
            } => {
                let mid = self.new_block();
                self.lower_cond(lhs, tb, mid)?;
                self.start_block(mid);
                self.lower_cond(rhs, tb, fb)
            }
            Expr::Unary {
                op: UnOp::Not,
                expr,
                ..
            } => self.lower_cond(expr, fb, tb),
            Expr::Binary { op, lhs, rhs, loc } if is_comparison(*op) => {
                let a = self.lower_expr(lhs)?;
                let b = self.lower_expr(rhs)?;
                let (a_op, b_op, ty) = self.unify(a, b, *loc)?;
                let cond = comparison_cond(*op, ty).expect("comparison op");
                self.terminate(Term::CondBr {
                    cond,
                    a: a_op,
                    b: b_op,
                    t: tb,
                    f: fb,
                });
                Ok(())
            }
            other => {
                let (v, _) = self.lower_expr(other)?;
                self.terminate(Term::CondBr {
                    cond: Cond::Ne,
                    a: v,
                    b: Operand::C(0),
                    t: tb,
                    f: fb,
                });
                Ok(())
            }
        }
    }

    fn lower_lvalue(&mut self, e: &Expr) -> Result<LValue, CompileError> {
        match e {
            Expr::Var(name, loc) => {
                if let Some(var) = self.lookup(name).cloned() {
                    if var.is_array {
                        return Err(CompileError::new(
                            *loc,
                            format!("cannot assign to array `{name}`"),
                        ));
                    }
                    return Ok(LValue {
                        place: Place::Slot(var.slot),
                        vty: var.vty,
                    });
                }
                if let Some(g) = self.globals.get(name).cloned() {
                    if g.is_array {
                        return Err(CompileError::new(
                            *loc,
                            format!("cannot assign to array `{name}`"),
                        ));
                    }
                    let addr = self.fresh();
                    self.emit(Inst::GlobalAddr {
                        dst: addr,
                        name: name.clone(),
                    });
                    return Ok(LValue {
                        place: Place::Mem {
                            addr: Operand::V(addr),
                            off: 0,
                        },
                        vty: g.vty,
                    });
                }
                Err(CompileError::new(
                    *loc,
                    format!("unknown variable `{name}`"),
                ))
            }
            Expr::Unary {
                op: UnOp::Deref,
                expr,
                loc,
            } => {
                let (v, t) = self.lower_expr(expr)?;
                let VTy::Ptr(s) = t else {
                    return Err(CompileError::new(*loc, "dereference of a non-pointer"));
                };
                Ok(LValue {
                    place: Place::Mem { addr: v, off: 0 },
                    vty: VTy::of(Type::Scalar(s)),
                })
            }
            Expr::Index { base, index, loc } => {
                let (addr, s) = self.lower_index_addr(base, index, *loc)?;
                Ok(LValue {
                    place: Place::Mem { addr, off: 0 },
                    vty: VTy::of(Type::Scalar(s)),
                })
            }
            other => Err(CompileError::new(
                other.loc(),
                "expression is not assignable",
            )),
        }
    }
}

fn is_comparison(op: AstBin) -> bool {
    matches!(
        op,
        AstBin::Eq | AstBin::Ne | AstBin::Lt | AstBin::Le | AstBin::Gt | AstBin::Ge
    )
}

/// Maps an AST comparison to an IR condition, choosing signedness from the
/// unified operand type (`u32` and pointers compare unsigned).
fn comparison_cond(op: AstBin, ty: VTy) -> Option<Cond> {
    let unsigned = !matches!(ty, VTy::Int);
    Some(match (op, unsigned) {
        (AstBin::Eq, _) => Cond::Eq,
        (AstBin::Ne, _) => Cond::Ne,
        (AstBin::Lt, false) => Cond::Lt,
        (AstBin::Le, false) => Cond::Le,
        (AstBin::Gt, false) => Cond::Gt,
        (AstBin::Ge, false) => Cond::Ge,
        (AstBin::Lt, true) => Cond::Ltu,
        (AstBin::Le, true) => Cond::Leu,
        (AstBin::Gt, true) => Cond::Gtu,
        (AstBin::Ge, true) => Cond::Geu,
        _ => return None,
    })
}

struct LValue {
    place: Place,
    vty: VTy,
}

enum Place {
    Slot(SlotId),
    Mem { addr: Operand, off: i64 },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn lower_src(src: &str) -> Result<IrModule, CompileError> {
        lower(&parse(src).unwrap(), Profile::A64)
    }

    #[test]
    fn minimal_main() {
        let m = lower_src("void main() { out(42); }").unwrap();
        assert_eq!(m.funcs.len(), 1);
        let f = &m.funcs[0];
        assert!(f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i, Inst::Out { .. })));
    }

    #[test]
    fn requires_main() {
        assert!(lower_src("void f() { }").is_err());
        assert!(lower_src("int main() { return 0; }").is_err());
    }

    #[test]
    fn locals_use_slots_before_optimization() {
        let m = lower_src("void main() { int x = 1; int y = x + 2; out(y); }").unwrap();
        let f = &m.funcs[0];
        assert_eq!(f.slots.len(), 2);
        let loads = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::LoadSlot { .. }))
            .count();
        assert!(loads >= 2, "expected slot loads in unoptimized IR");
    }

    #[test]
    fn global_layout_offsets() {
        let m = lower_src("int a; u32 t[3]; int b; void main() { out(a + b + t[0]); }").unwrap();
        assert_eq!(m.globals[0].offset, 0);
        assert_eq!(m.globals[1].offset, 8);
        // 3 u32 elements = 12 bytes, next global aligns to 8 → 24.
        assert_eq!(m.globals[2].offset, 24);
        assert_eq!(m.data_size, 32);
    }

    #[test]
    fn word_size_changes_global_layout() {
        let src = "int a[4]; void main() { out(a[0]); }";
        let m32 = lower(&parse(src).unwrap(), Profile::A32).unwrap();
        let m64 = lower(&parse(src).unwrap(), Profile::A64).unwrap();
        assert_eq!(m32.globals[0].elem_bytes, 4);
        assert_eq!(m64.globals[0].elem_bytes, 8);
    }

    #[test]
    fn rejects_too_many_params_for_a32() {
        let src = "int f(int a, int b, int c, int d, int e) { return a; } void main() { out(f(1,2,3,4,5)); }";
        assert!(lower(&parse(src).unwrap(), Profile::A32).is_err());
        assert!(lower(&parse(src).unwrap(), Profile::A64).is_ok());
    }

    #[test]
    fn rejects_type_errors() {
        assert!(lower_src("void main() { int x; x = main; }").is_err());
        assert!(lower_src("void main() { int a[3]; a = 1; }").is_err());
        assert!(lower_src("void main() { int x; out(*x); }").is_err());
        assert!(lower_src("void main() { out(nosuch); }").is_err());
        assert!(lower_src("void main() { nosuch(1); }").is_err());
        assert!(lower_src("void main() { break; }").is_err());
        assert!(lower_src("int f() { return 1; } void main() { f(2); }").is_err());
    }

    #[test]
    fn address_taken_slots_are_marked() {
        let m = lower_src("void main() { int x = 1; int *p = &x; *p = 2; out(x); }").unwrap();
        let f = &m.funcs[0];
        let x = f.slots.iter().find(|s| s.name == "x").unwrap();
        assert!(x.addr_taken);
        let p = f.slots.iter().find(|s| s.name == "p").unwrap();
        assert!(!p.addr_taken);
    }

    #[test]
    fn comparisons_pick_signedness_from_type() {
        let m = lower_src(
            "void main() { int a = 1; u32 b = 2; if (a < -1) out(1); if (b < 3) out(2); }",
        )
        .unwrap();
        let conds: Vec<Cond> = m.funcs[0]
            .blocks
            .iter()
            .filter_map(|b| match b.term {
                Term::CondBr { cond, .. } => Some(cond),
                _ => None,
            })
            .collect();
        assert!(conds.contains(&Cond::Lt));
        assert!(conds.contains(&Cond::Ltu));
    }

    #[test]
    fn short_circuit_creates_control_flow() {
        let m =
            lower_src("void main() { int a = 1; int b = 2; if (a < 1 && b > 0) out(1); }").unwrap();
        assert!(m.funcs[0].blocks.len() >= 4);
    }

    #[test]
    fn nested_loops_with_break_continue() {
        let src = "
            void main() {
                int s = 0;
                for (int i = 0; i < 10; i = i + 1) {
                    int j = 0;
                    while (1) {
                        j = j + 1;
                        if (j > i) break;
                        if (j % 2 == 0) continue;
                        s = s + j;
                    }
                }
                out(s);
            }";
        assert!(lower_src(src).is_ok());
    }
}
