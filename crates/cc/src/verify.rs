//! IR and allocation verification — the compiler's internal consistency
//! net.
//!
//! Every optimization pass must preserve the structural invariants of the
//! IR. A miscompile here would silently corrupt every downstream AVF
//! number, so the pass manager ([`crate::opt::run_pipeline_checked`]) runs
//! [`verify_module`] after every pass whenever verification is enabled
//! (default-on in tests and under the `verify-ir` cargo feature), and
//! [`crate::codegen`] runs [`verify_allocation`] after register
//! allocation.
//!
//! Checked IR invariants:
//!
//! * every block's terminator targets existing blocks (no references to
//!   deleted blocks),
//! * every vreg / stack-slot / global reference is in bounds,
//! * every value is defined before use along **all** CFG paths (forward
//!   "definitely assigned" dataflow — the IR is non-SSA, so this is the
//!   analog of SSA's dominance check),
//! * call sites match their callee's signature (argument count and return
//!   presence), and callees exist.
//!
//! Checked allocation invariants:
//!
//! * every vreg that appears in the function has a location,
//! * the reserved scratch registers are never allocated,
//! * no two simultaneously-live vregs share a physical register or spill
//!   slot, and no definition clobbers a value live across it,
//! * spill slots are written before they are read (this follows from
//!   def-before-use at the IR level: a spilled vreg's slot is stored
//!   exactly when the vreg is defined, so the dataflow check above is
//!   re-run on the allocated function).

use crate::ir::{liveness, Inst, IrFunc, IrModule, VReg};
use crate::regalloc::{scratch0, scratch1, Allocation, Loc};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A verification failure, locating the offending pass, function, block,
/// and instruction as precisely as possible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// The pass after which verification failed (attached by the pass
    /// manager; `None` for standalone verification).
    pub pass: Option<String>,
    /// The function containing the violation.
    pub function: String,
    /// The offending block, when the violation is block-local.
    pub block: Option<usize>,
    /// The offending instruction index within the block (`None` when the
    /// violation is in the terminator or block-level).
    pub inst: Option<usize>,
    /// What was violated.
    pub message: String,
}

impl VerifyError {
    fn new(function: &str, message: String) -> VerifyError {
        VerifyError {
            pass: None,
            function: function.to_string(),
            block: None,
            inst: None,
            message,
        }
    }

    fn at(function: &str, block: usize, inst: Option<usize>, message: String) -> VerifyError {
        VerifyError {
            pass: None,
            function: function.to_string(),
            block: Some(block),
            inst,
            message,
        }
    }

    /// Attaches the name of the pass that produced the broken IR.
    #[must_use]
    pub fn after_pass(mut self, pass: &str) -> VerifyError {
        self.pass = Some(pass.to_string());
        self
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IR verification failed")?;
        if let Some(pass) = &self.pass {
            write!(f, " after pass `{pass}`")?;
        }
        write!(f, " in function `{}`", self.function)?;
        if let Some(b) = self.block {
            write!(f, ", block bb{b}")?;
        }
        if let Some(i) = self.inst {
            write!(f, ", instruction {i}")?;
        }
        write!(f, ": {}", self.message)
    }
}

impl std::error::Error for VerifyError {}

/// A dense bitset over vregs, sized to the function's `next_vreg`.
#[derive(Clone, PartialEq, Eq)]
struct VRegSet {
    words: Vec<u64>,
}

impl VRegSet {
    fn empty(nvregs: u32) -> VRegSet {
        VRegSet {
            words: vec![0; (nvregs as usize).div_ceil(64)],
        }
    }

    fn full(nvregs: u32) -> VRegSet {
        let mut s = VRegSet {
            words: vec![!0u64; (nvregs as usize).div_ceil(64)],
        };
        // Mask the tail so `full ∩ x == x`.
        let tail = nvregs as usize % 64;
        if tail != 0 {
            if let Some(last) = s.words.last_mut() {
                *last = (1u64 << tail) - 1;
            }
        }
        s
    }

    fn insert(&mut self, v: VReg) {
        self.words[v as usize / 64] |= 1 << (v % 64);
    }

    fn contains(&self, v: VReg) -> bool {
        self.words[v as usize / 64] & (1 << (v % 64)) != 0
    }

    fn intersect_with(&mut self, other: &VRegSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }
}

/// Verifies the structural invariants of a single function. Call-site
/// checks need the whole module; use [`verify_module`] for those.
///
/// # Errors
///
/// The first violation found, located as precisely as possible.
pub fn verify_func(func: &IrFunc) -> Result<(), VerifyError> {
    if func.blocks.is_empty() {
        return Err(VerifyError::new(
            &func.name,
            "function has no blocks".into(),
        ));
    }

    // Parameters: in range and unique.
    let mut seen = HashSet::new();
    for &(v, _) in &func.params {
        if v >= func.next_vreg {
            return Err(VerifyError::new(
                &func.name,
                format!(
                    "parameter v{v} out of range (next_vreg = {})",
                    func.next_vreg
                ),
            ));
        }
        if !seen.insert(v) {
            return Err(VerifyError::new(
                &func.name,
                format!("duplicate parameter v{v}"),
            ));
        }
    }

    // Per-block structural checks: operand ranges, slot ids, branch targets.
    let nblocks = func.blocks.len();
    for (bid, block) in func.blocks.iter().enumerate() {
        for (i, inst) in block.insts.iter().enumerate() {
            check_inst_ranges(func, bid, i, inst)?;
        }
        for target in block.term.succs() {
            if target >= nblocks {
                return Err(VerifyError::at(
                    &func.name,
                    bid,
                    None,
                    format!("terminator targets deleted block bb{target} (only {nblocks} blocks)"),
                ));
            }
        }
        for v in block.term.uses() {
            if v >= func.next_vreg {
                return Err(VerifyError::at(
                    &func.name,
                    bid,
                    None,
                    format!("terminator reads out-of-range v{v}"),
                ));
            }
        }
    }

    check_def_before_use(func)
}

fn check_inst_ranges(func: &IrFunc, bid: usize, i: usize, inst: &Inst) -> Result<(), VerifyError> {
    let err = |msg: String| Err(VerifyError::at(&func.name, bid, Some(i), msg));
    if let Some(d) = inst.def() {
        if d >= func.next_vreg {
            return err(format!(
                "defines out-of-range v{d} (next_vreg = {})",
                func.next_vreg
            ));
        }
    }
    for u in inst.uses() {
        if u >= func.next_vreg {
            return err(format!(
                "reads out-of-range v{u} (next_vreg = {})",
                func.next_vreg
            ));
        }
    }
    match inst {
        Inst::SlotAddr { slot, .. }
        | Inst::LoadSlot { slot, .. }
        | Inst::StoreSlot { slot, .. }
            if *slot >= func.slots.len() =>
        {
            return err(format!(
                "references deleted slot {slot} (only {} slots)",
                func.slots.len()
            ));
        }
        _ => {}
    }
    Ok(())
}

/// Forward "definitely assigned" dataflow: a vreg may be read at a point
/// only if it is assigned on **every** CFG path from the entry to that
/// point. Unreachable blocks trivially satisfy the check (their in-set is
/// ⊤, the dataflow lattice top).
fn check_def_before_use(func: &IrFunc) -> Result<(), VerifyError> {
    let nblocks = func.blocks.len();
    let nvregs = func.next_vreg;
    let preds = func.preds();

    let mut entry_in = VRegSet::empty(nvregs);
    for &(v, _) in &func.params {
        entry_in.insert(v);
    }

    // out[b] starts at ⊤ so intersections converge downward.
    let mut outs: Vec<VRegSet> = vec![VRegSet::full(nvregs); nblocks];
    let mut changed = true;
    while changed {
        changed = false;
        for bid in 0..nblocks {
            let mut inn = if bid == 0 {
                entry_in.clone()
            } else if preds[bid].is_empty() {
                VRegSet::full(nvregs)
            } else {
                let mut s = outs[preds[bid][0]].clone();
                for &p in &preds[bid][1..] {
                    s.intersect_with(&outs[p]);
                }
                s
            };
            for inst in &func.blocks[bid].insts {
                if let Some(d) = inst.def() {
                    inn.insert(d);
                }
            }
            if inn != outs[bid] {
                outs[bid] = inn;
                changed = true;
            }
        }
    }

    // Check pass with the converged in-sets.
    for bid in 0..nblocks {
        let mut defined = if bid == 0 {
            entry_in.clone()
        } else if preds[bid].is_empty() {
            VRegSet::full(nvregs)
        } else {
            let mut s = outs[preds[bid][0]].clone();
            for &p in &preds[bid][1..] {
                s.intersect_with(&outs[p]);
            }
            s
        };
        let block = &func.blocks[bid];
        for (i, inst) in block.insts.iter().enumerate() {
            for u in inst.uses() {
                if !defined.contains(u) {
                    return Err(VerifyError::at(
                        &func.name,
                        bid,
                        Some(i),
                        format!("v{u} read before being defined on some path ({inst:?})"),
                    ));
                }
            }
            if let Some(d) = inst.def() {
                defined.insert(d);
            }
        }
        for u in block.term.uses() {
            if !defined.contains(u) {
                return Err(VerifyError::at(
                    &func.name,
                    bid,
                    None,
                    format!("terminator reads v{u} before it is defined on some path"),
                ));
            }
        }
    }
    Ok(())
}

/// Verifies every function of a module plus the cross-function invariants:
/// call sites name existing functions and match their signatures, and
/// global references name existing globals.
///
/// # Errors
///
/// The first violation found.
pub fn verify_module(module: &IrModule) -> Result<(), VerifyError> {
    let index: HashMap<&str, &IrFunc> = module.funcs.iter().map(|f| (f.name.as_str(), f)).collect();
    let globals: HashSet<&str> = module.globals.iter().map(|g| g.name.as_str()).collect();

    for func in &module.funcs {
        verify_func(func)?;
        for (bid, block) in func.blocks.iter().enumerate() {
            for (i, inst) in block.insts.iter().enumerate() {
                match inst {
                    Inst::Call { dst, callee, args } => {
                        let Some(target) = index.get(callee.as_str()) else {
                            return Err(VerifyError::at(
                                &func.name,
                                bid,
                                Some(i),
                                format!("call to unknown function `{callee}`"),
                            ));
                        };
                        if args.len() != target.params.len() {
                            return Err(VerifyError::at(
                                &func.name,
                                bid,
                                Some(i),
                                format!(
                                    "call to `{callee}` passes {} args, expects {}",
                                    args.len(),
                                    target.params.len()
                                ),
                            ));
                        }
                        if dst.is_some() && target.ret.is_none() {
                            return Err(VerifyError::at(
                                &func.name,
                                bid,
                                Some(i),
                                format!("call captures the result of void function `{callee}`"),
                            ));
                        }
                    }
                    Inst::GlobalAddr { name, .. } if !globals.contains(name.as_str()) => {
                        return Err(VerifyError::at(
                            &func.name,
                            bid,
                            Some(i),
                            format!("reference to unknown global `{name}`"),
                        ));
                    }
                    _ => {}
                }
            }
        }
    }
    Ok(())
}

/// Verifies a register allocation against its function: complete coverage,
/// no scratch-register assignment, and no two simultaneously-live vregs
/// sharing a physical register or spill slot (including definitions
/// clobbering values live across them).
///
/// # Errors
///
/// The first violation found.
pub fn verify_allocation(func: &IrFunc, alloc: &Allocation) -> Result<(), VerifyError> {
    // Coverage and scratch reservation.
    let check_loc = |v: VReg, bid: usize, i: Option<usize>| -> Result<(), VerifyError> {
        match alloc.locs.get(&v) {
            None => Err(VerifyError::at(
                &func.name,
                bid,
                i,
                format!("v{v} has no allocated location"),
            )),
            Some(Loc::R(r)) if *r == scratch0() || *r == scratch1() => Err(VerifyError::at(
                &func.name,
                bid,
                i,
                format!("v{v} allocated to reserved scratch register {r}"),
            )),
            Some(_) => Ok(()),
        }
    };
    for (bid, block) in func.blocks.iter().enumerate() {
        for (i, inst) in block.insts.iter().enumerate() {
            for v in inst.uses().into_iter().chain(inst.def()) {
                check_loc(v, bid, Some(i))?;
            }
        }
        for v in block.term.uses() {
            check_loc(v, bid, None)?;
        }
    }

    // Interference: walk each block backwards from live_out; at every
    // program point the live set must map injectively into locations.
    let (_, live_out) = liveness(func);
    for (bid, block) in func.blocks.iter().enumerate() {
        let mut live: HashSet<VReg> = live_out[bid].clone();
        for v in block.term.uses() {
            live.insert(v);
        }
        check_no_overlap(func, alloc, &live, bid, None)?;
        for (i, inst) in block.insts.iter().enumerate().rev() {
            // Before stepping over the definition, the defined value and
            // everything live after it coexist: a def must not clobber a
            // location that stays live across the instruction.
            if let Some(d) = inst.def() {
                for &v in live.iter() {
                    if v != d && alloc.locs.get(&v) == alloc.locs.get(&d) {
                        return Err(VerifyError::at(
                            &func.name,
                            bid,
                            Some(i),
                            format!(
                                "definition of v{d} clobbers v{v}, which is live across it in {:?}",
                                alloc.locs.get(&d)
                            ),
                        ));
                    }
                }
                live.remove(&d);
            }
            for u in inst.uses() {
                live.insert(u);
            }
            check_no_overlap(func, alloc, &live, bid, Some(i))?;
        }
    }

    // Spill-before-read follows from def-before-use on the allocated
    // function (a spilled vreg's slot is written exactly at its defs).
    check_def_before_use(func)
}

fn check_no_overlap(
    func: &IrFunc,
    alloc: &Allocation,
    live: &HashSet<VReg>,
    bid: usize,
    inst: Option<usize>,
) -> Result<(), VerifyError> {
    let mut owner: HashMap<Loc, VReg> = HashMap::with_capacity(live.len());
    for &v in live {
        let Some(loc) = alloc.locs.get(&v) else {
            continue;
        };
        if let Some(prev) = owner.insert(*loc, v) {
            let (a, b) = (prev.min(v), prev.max(v));
            return Err(VerifyError::at(
                &func.name,
                bid,
                inst,
                format!("v{a} and v{b} are simultaneously live but share {loc:?}"),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, Block, Cond, Operand, Term, Width};
    use crate::regalloc::allocate;
    use softerr_isa::Profile;

    fn func(blocks: Vec<Block>, next_vreg: VReg) -> IrFunc {
        IrFunc {
            name: "f".into(),
            params: vec![],
            ret: None,
            blocks,
            slots: vec![],
            next_vreg,
        }
    }

    #[test]
    fn accepts_well_formed_diamond() {
        // bb0: v0 = 1; br v0 ? bb1 : bb2 ; both define v1; bb3 reads v1.
        let def_v1 = |c: i64| Block {
            insts: vec![Inst::Copy {
                dst: 1,
                src: Operand::C(c),
            }],
            term: Term::Jmp(3),
        };
        let f = func(
            vec![
                Block {
                    insts: vec![Inst::Copy {
                        dst: 0,
                        src: Operand::C(1),
                    }],
                    term: Term::CondBr {
                        cond: Cond::Ne,
                        a: Operand::V(0),
                        b: Operand::C(0),
                        t: 1,
                        f: 2,
                    },
                },
                def_v1(10),
                def_v1(20),
                Block {
                    insts: vec![Inst::Out { src: Operand::V(1) }],
                    term: Term::Ret(None),
                },
            ],
            2,
        );
        verify_func(&f).unwrap();
    }

    #[test]
    fn rejects_use_defined_on_one_path_only() {
        // Only the taken path defines v1; the join reads it.
        let f = func(
            vec![
                Block {
                    insts: vec![Inst::Copy {
                        dst: 0,
                        src: Operand::C(1),
                    }],
                    term: Term::CondBr {
                        cond: Cond::Ne,
                        a: Operand::V(0),
                        b: Operand::C(0),
                        t: 1,
                        f: 2,
                    },
                },
                Block {
                    insts: vec![Inst::Copy {
                        dst: 1,
                        src: Operand::C(10),
                    }],
                    term: Term::Jmp(2),
                },
                Block {
                    insts: vec![Inst::Out { src: Operand::V(1) }],
                    term: Term::Ret(None),
                },
            ],
            2,
        );
        let err = verify_func(&f).unwrap_err();
        assert_eq!(err.block, Some(2));
        assert!(err.message.contains("v1"), "{err}");
    }

    #[test]
    fn rejects_dangling_branch_target() {
        let f = func(
            vec![Block {
                insts: vec![],
                term: Term::Jmp(7),
            }],
            0,
        );
        let err = verify_func(&f).unwrap_err();
        assert!(err.message.contains("deleted block bb7"), "{err}");
    }

    #[test]
    fn rejects_out_of_range_vreg() {
        let f = func(
            vec![Block {
                insts: vec![Inst::Copy {
                    dst: 9,
                    src: Operand::C(0),
                }],
                term: Term::Ret(None),
            }],
            1,
        );
        let err = verify_func(&f).unwrap_err();
        assert!(err.message.contains("out-of-range v9"), "{err}");
    }

    #[test]
    fn loop_carried_value_is_accepted() {
        // v0 defined before the loop, incremented inside it: defined on all
        // paths into the loop header.
        let f = func(
            vec![
                Block {
                    insts: vec![Inst::Copy {
                        dst: 0,
                        src: Operand::C(0),
                    }],
                    term: Term::Jmp(1),
                },
                Block {
                    insts: vec![Inst::Bin {
                        op: BinOp::Add,
                        w: Width::Word,
                        dst: 0,
                        a: Operand::V(0),
                        b: Operand::C(1),
                    }],
                    term: Term::CondBr {
                        cond: Cond::Lt,
                        a: Operand::V(0),
                        b: Operand::C(10),
                        t: 1,
                        f: 2,
                    },
                },
                Block {
                    insts: vec![Inst::Out { src: Operand::V(0) }],
                    term: Term::Ret(None),
                },
            ],
            1,
        );
        verify_func(&f).unwrap();
    }

    #[test]
    fn module_call_signature_mismatch_rejected() {
        let callee = IrFunc {
            name: "g".into(),
            params: vec![(0, Width::Word)],
            ret: None,
            blocks: vec![Block {
                insts: vec![],
                term: Term::Ret(None),
            }],
            slots: vec![],
            next_vreg: 1,
        };
        let caller = func(
            vec![Block {
                insts: vec![Inst::Call {
                    dst: None,
                    callee: "g".into(),
                    args: vec![],
                }],
                term: Term::Ret(None),
            }],
            0,
        );
        let m = IrModule {
            funcs: vec![caller, callee],
            globals: vec![],
            data_size: 0,
        };
        let err = verify_module(&m).unwrap_err();
        assert!(err.message.contains("passes 0 args, expects 1"), "{err}");

        let bad_ret = func(
            vec![Block {
                insts: vec![Inst::Call {
                    dst: Some(0),
                    callee: "h".into(),
                    args: vec![],
                }],
                term: Term::Ret(None),
            }],
            1,
        );
        let void_h = IrFunc {
            name: "h".into(),
            params: vec![],
            ret: None,
            blocks: vec![Block {
                insts: vec![],
                term: Term::Ret(None),
            }],
            slots: vec![],
            next_vreg: 0,
        };
        let m = IrModule {
            funcs: vec![bad_ret, void_h],
            globals: vec![],
            data_size: 0,
        };
        let err = verify_module(&m).unwrap_err();
        assert!(err.message.contains("void function"), "{err}");
    }

    #[test]
    fn allocation_overlap_is_rejected() {
        // v0 and v1 overlap; force them into the same register.
        let f = func(
            vec![Block {
                insts: vec![
                    Inst::Copy {
                        dst: 0,
                        src: Operand::C(1),
                    },
                    Inst::Copy {
                        dst: 1,
                        src: Operand::C(2),
                    },
                    Inst::Bin {
                        op: BinOp::Add,
                        w: Width::Word,
                        dst: 0,
                        a: Operand::V(0),
                        b: Operand::V(1),
                    },
                    Inst::Out { src: Operand::V(0) },
                ],
                term: Term::Ret(None),
            }],
            2,
        );
        let good = allocate(&f, Profile::A64);
        verify_allocation(&f, &good).unwrap();

        let mut bad = good.clone();
        let loc0 = bad.locs[&0];
        bad.locs.insert(1, loc0);
        let err = verify_allocation(&f, &bad).unwrap_err();
        assert!(err.message.contains("share"), "{err}");
    }

    #[test]
    fn allocation_scratch_assignment_rejected() {
        let f = func(
            vec![Block {
                insts: vec![
                    Inst::Copy {
                        dst: 0,
                        src: Operand::C(1),
                    },
                    Inst::Out { src: Operand::V(0) },
                ],
                term: Term::Ret(None),
            }],
            1,
        );
        let mut alloc = allocate(&f, Profile::A64);
        alloc.locs.insert(0, Loc::R(scratch0()));
        let err = verify_allocation(&f, &alloc).unwrap_err();
        assert!(err.message.contains("scratch"), "{err}");
    }

    #[test]
    fn error_display_names_pass_function_block_inst() {
        let e = VerifyError::at("main", 3, Some(7), "v9 read before defined".into())
            .after_pass("cross-jump");
        let msg = e.to_string();
        assert!(msg.contains("`cross-jump`"), "{msg}");
        assert!(msg.contains("`main`"), "{msg}");
        assert!(msg.contains("bb3"), "{msg}");
        assert!(msg.contains("instruction 7"), "{msg}");
    }
}
