//! Linear-scan register allocation.
//!
//! A classic Poletto/Sarkar linear scan over conservative live intervals:
//!
//! * liveness is computed by iterative backward dataflow over the CFG,
//! * each vreg gets one interval `[start, end]` covering every point where
//!   it may be live,
//! * intervals that cross a call site may only take callee-saved registers
//!   (or spill), so nothing caller-saved is ever live across a call,
//! * two registers per class are reserved as scratch for spill reloads and
//!   constant materialization and are never allocated.
//!
//! The allocatable pools come from the target [`Profile`]'s ABI, so the A32
//! target allocates far fewer registers than A64 — reproducing the
//! register-pressure gap between the paper's Armv7 and Armv8 binaries.

use crate::ir::{IrFunc, VReg};
use softerr_isa::{Profile, Reg};
use std::collections::{HashMap, HashSet};

/// Where a vreg lives at execution time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Loc {
    /// A machine register.
    R(Reg),
    /// A spill slot index (frame-relative; the codegen assigns offsets).
    Spill(usize),
}

/// The result of register allocation for one function.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// Location of each vreg that appears in the function.
    pub locs: HashMap<VReg, Loc>,
    /// Callee-saved registers used (must be preserved in the prologue).
    pub used_callee: Vec<Reg>,
    /// Number of spill slots needed.
    pub spill_slots: usize,
}

/// First scratch register (reserved, never allocated).
pub fn scratch0() -> Reg {
    Reg::new(3)
}

/// Second scratch register (reserved, never allocated).
pub fn scratch1() -> Reg {
    Reg::new(4)
}

#[derive(Debug, Clone)]
struct Interval {
    vreg: VReg,
    start: u32,
    end: u32,
    crosses_call: bool,
}

/// Runs liveness analysis and linear-scan allocation for `func`.
pub fn allocate(func: &IrFunc, profile: Profile) -> Allocation {
    let (live_in, live_out) = crate::ir::liveness(func);

    // Number program points linearly and build intervals.
    let mut intervals: HashMap<VReg, Interval> = HashMap::new();
    let mut call_points: Vec<u32> = Vec::new();
    let mut point = 0u32;
    let touch = |map: &mut HashMap<VReg, Interval>, v: VReg, p: u32| {
        let e = map.entry(v).or_insert(Interval {
            vreg: v,
            start: p,
            end: p,
            crosses_call: false,
        });
        e.start = e.start.min(p);
        e.end = e.end.max(p);
    };
    // Parameters are live from point 0.
    for (v, _) in &func.params {
        touch(&mut intervals, *v, 0);
    }
    for (id, b) in func.blocks.iter().enumerate() {
        let block_start = point;
        for v in &live_in[id] {
            touch(&mut intervals, *v, block_start);
        }
        for inst in &b.insts {
            point += 1;
            for u in inst.uses() {
                touch(&mut intervals, u, point);
            }
            if let Some(d) = inst.def() {
                touch(&mut intervals, d, point);
            }
            if matches!(inst, crate::ir::Inst::Call { .. }) {
                call_points.push(point);
            }
        }
        point += 1; // terminator point
        for u in b.term.uses() {
            touch(&mut intervals, u, point);
        }
        for v in &live_out[id] {
            touch(&mut intervals, *v, point);
        }
        point += 1; // block end boundary
    }

    for itv in intervals.values_mut() {
        itv.crosses_call = call_points.iter().any(|&c| itv.start < c && c < itv.end);
    }

    // Allocatable pools. Two temporaries are reserved as scratch.
    let caller_pool: Vec<Reg> = profile
        .temp_regs()
        .into_iter()
        .filter(|r| *r != scratch0() && *r != scratch1())
        .collect();
    let callee_pool: Vec<Reg> = profile.saved_regs();

    let mut sorted: Vec<Interval> = intervals.into_values().collect();
    sorted.sort_by_key(|i| (i.start, i.vreg));

    let mut free_caller: Vec<Reg> = caller_pool.clone();
    let mut free_callee: Vec<Reg> = callee_pool.clone();
    // Active intervals: (end, vreg, reg, is_callee).
    let mut active: Vec<(u32, VReg, Reg, bool)> = Vec::new();
    let mut locs: HashMap<VReg, Loc> = HashMap::new();
    let mut used_callee: HashSet<Reg> = HashSet::new();
    let mut spill_slots = 0usize;

    for itv in sorted {
        // Expire finished intervals.
        active.retain(|&(end, _, reg, is_callee)| {
            if end < itv.start {
                if is_callee {
                    free_callee.push(reg);
                } else {
                    free_caller.push(reg);
                }
                false
            } else {
                true
            }
        });

        let choice = if itv.crosses_call {
            free_callee.pop().map(|r| (r, true))
        } else {
            free_caller
                .pop()
                .map(|r| (r, false))
                .or_else(|| free_callee.pop().map(|r| (r, true)))
        };

        match choice {
            Some((reg, is_callee)) => {
                if is_callee {
                    used_callee.insert(reg);
                }
                locs.insert(itv.vreg, Loc::R(reg));
                active.push((itv.end, itv.vreg, reg, is_callee));
            }
            None => {
                // Spill the interval that ends furthest (current or an
                // active one this interval could replace).
                let candidate = active
                    .iter()
                    .enumerate()
                    .filter(|(_, &(_, _, _, is_callee))| is_callee || !itv.crosses_call)
                    .max_by_key(|(_, &(end, _, _, _))| end)
                    .map(|(i, &(end, v, reg, is_callee))| (i, end, v, reg, is_callee));
                match candidate {
                    Some((idx, end, victim, reg, is_callee)) if end > itv.end => {
                        locs.insert(victim, Loc::Spill(spill_slots));
                        spill_slots += 1;
                        locs.insert(itv.vreg, Loc::R(reg));
                        active.remove(idx);
                        active.push((itv.end, itv.vreg, reg, is_callee));
                    }
                    _ => {
                        locs.insert(itv.vreg, Loc::Spill(spill_slots));
                        spill_slots += 1;
                    }
                }
            }
        }
    }

    let mut used_callee: Vec<Reg> = used_callee.into_iter().collect();
    used_callee.sort_by_key(|r| r.index());
    Allocation {
        locs,
        used_callee,
        spill_slots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::*;

    fn simple_func(nvregs: u32, insts: Vec<Inst>, term: Term) -> IrFunc {
        IrFunc {
            name: "f".into(),
            params: vec![],
            ret: None,
            blocks: vec![Block { insts, term }],
            slots: vec![],
            next_vreg: nvregs,
        }
    }

    #[test]
    fn disjoint_intervals_share_registers() {
        // v0 used then dead; v1 used after — can share.
        let f = simple_func(
            2,
            vec![
                Inst::Copy {
                    dst: 0,
                    src: Operand::C(1),
                },
                Inst::Out { src: Operand::V(0) },
                Inst::Copy {
                    dst: 1,
                    src: Operand::C(2),
                },
                Inst::Out { src: Operand::V(1) },
            ],
            Term::Ret(None),
        );
        let a = allocate(&f, Profile::A64);
        let Loc::R(r0) = a.locs[&0] else {
            panic!("spilled")
        };
        let Loc::R(r1) = a.locs[&1] else {
            panic!("spilled")
        };
        assert_eq!(r0, r1, "disjoint intervals should reuse the register");
    }

    #[test]
    fn overlapping_intervals_get_distinct_registers() {
        let f = simple_func(
            2,
            vec![
                Inst::Copy {
                    dst: 0,
                    src: Operand::C(1),
                },
                Inst::Copy {
                    dst: 1,
                    src: Operand::C(2),
                },
                Inst::Bin {
                    op: BinOp::Add,
                    w: Width::Word,
                    dst: 0,
                    a: Operand::V(0),
                    b: Operand::V(1),
                },
                Inst::Out { src: Operand::V(0) },
            ],
            Term::Ret(None),
        );
        let a = allocate(&f, Profile::A64);
        let Loc::R(r0) = a.locs[&0] else { panic!() };
        let Loc::R(r1) = a.locs[&1] else { panic!() };
        assert_ne!(r0, r1);
    }

    #[test]
    fn call_crossing_interval_gets_callee_saved() {
        let f = simple_func(
            1,
            vec![
                Inst::Copy {
                    dst: 0,
                    src: Operand::C(1),
                },
                Inst::Call {
                    dst: None,
                    callee: "g".into(),
                    args: vec![],
                },
                Inst::Out { src: Operand::V(0) },
            ],
            Term::Ret(None),
        );
        let a = allocate(&f, Profile::A64);
        let Loc::R(r) = a.locs[&0] else {
            panic!("spilled")
        };
        assert!(
            Profile::A64.saved_regs().contains(&r),
            "{r} is not callee-saved"
        );
        assert_eq!(a.used_callee, vec![r]);
    }

    #[test]
    fn scratch_registers_never_allocated() {
        // More live vregs than available registers on A32 → spills, but never
        // the scratch registers.
        let n = 24u32;
        let mut insts: Vec<Inst> = (0..n)
            .map(|v| Inst::Copy {
                dst: v,
                src: Operand::C(v as i64),
            })
            .collect();
        for v in 0..n {
            insts.push(Inst::Out { src: Operand::V(v) });
        }
        let f = simple_func(n, insts, Term::Ret(None));
        let a = allocate(&f, Profile::A32);
        for loc in a.locs.values() {
            if let Loc::R(r) = loc {
                assert_ne!(*r, scratch0());
                assert_ne!(*r, scratch1());
            }
        }
        assert!(a.spill_slots > 0, "A32 should spill under this pressure");
    }

    #[test]
    fn a64_spills_less_than_a32() {
        let n = 16u32;
        let mut insts: Vec<Inst> = (0..n)
            .map(|v| Inst::Copy {
                dst: v,
                src: Operand::C(v as i64),
            })
            .collect();
        for v in 0..n {
            insts.push(Inst::Out { src: Operand::V(v) });
        }
        let f = simple_func(n, insts, Term::Ret(None));
        let a32 = allocate(&f, Profile::A32);
        let a64 = allocate(&f, Profile::A64);
        assert!(a64.spill_slots < a32.spill_slots);
    }

    #[test]
    fn loop_variable_live_across_backedge() {
        // bb0: v0 = 0; jmp bb1
        // bb1: v0 = v0 + 1; if v0 < 10 goto bb1 else bb2
        // bb2: out v0; ret
        let f = IrFunc {
            name: "f".into(),
            params: vec![],
            ret: None,
            blocks: vec![
                Block {
                    insts: vec![Inst::Copy {
                        dst: 0,
                        src: Operand::C(0),
                    }],
                    term: Term::Jmp(1),
                },
                Block {
                    insts: vec![Inst::Bin {
                        op: BinOp::Add,
                        w: Width::Word,
                        dst: 0,
                        a: Operand::V(0),
                        b: Operand::C(1),
                    }],
                    term: Term::CondBr {
                        cond: Cond::Lt,
                        a: Operand::V(0),
                        b: Operand::C(10),
                        t: 1,
                        f: 2,
                    },
                },
                Block {
                    insts: vec![Inst::Out { src: Operand::V(0) }],
                    term: Term::Ret(None),
                },
            ],
            slots: vec![],
            next_vreg: 1,
        };
        let a = allocate(&f, Profile::A64);
        assert!(a.locs.contains_key(&0));
    }
}
