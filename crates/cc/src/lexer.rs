//! Hand-written lexer for MiniC.

use crate::error::{CompileError, Loc};

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Integer literal (value fits i64).
    Int(i64),
    /// Identifier or keyword candidate.
    Ident(String),
    /// `int` keyword.
    KwInt,
    /// `u32` keyword.
    KwU32,
    /// `void` keyword.
    KwVoid,
    /// `if` keyword.
    KwIf,
    /// `else` keyword.
    KwElse,
    /// `while` keyword.
    KwWhile,
    /// `for` keyword.
    KwFor,
    /// `return` keyword.
    KwReturn,
    /// `break` keyword.
    KwBreak,
    /// `continue` keyword.
    KwContinue,
    /// `const` keyword (accepted and ignored).
    KwConst,
    /// `out` builtin keyword.
    KwOut,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `{`.
    LBrace,
    /// `}`.
    RBrace,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `;`.
    Semi,
    /// `,`.
    Comma,
    /// `=`.
    Assign,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `/`.
    Slash,
    /// `%`.
    Percent,
    /// `&`.
    Amp,
    /// `|`.
    Pipe,
    /// `^`.
    Caret,
    /// `~`.
    Tilde,
    /// `!`.
    Bang,
    /// `<<`.
    Shl,
    /// `>>`.
    Shr,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `==`.
    EqEq,
    /// `!=`.
    Ne,
    /// `&&`.
    AndAnd,
    /// `||`.
    OrOr,
    /// End of input.
    Eof,
}

/// A token paired with its source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub loc: Loc,
}

/// Tokenizes MiniC source.
///
/// # Errors
///
/// Returns a [`CompileError`] on unknown characters or malformed literals.
pub fn lex(src: &str) -> Result<Vec<Token>, CompileError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;
    macro_rules! bump {
        () => {{
            if bytes[i] == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }
    while i < bytes.len() {
        let c = bytes[i];
        let loc = Loc { line, col };
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                bump!();
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    bump!();
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                bump!();
                bump!();
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(CompileError::new(loc, "unterminated block comment"));
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        bump!();
                        bump!();
                        break;
                    }
                    bump!();
                }
            }
            b'0'..=b'9' => {
                let hex = c == b'0' && matches!(bytes.get(i + 1), Some(b'x') | Some(b'X'));
                let mut text = String::new();
                if hex {
                    bump!();
                    bump!();
                    while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                        text.push(bytes[i] as char);
                        bump!();
                    }
                    if text.is_empty() {
                        return Err(CompileError::new(loc, "empty hex literal"));
                    }
                    let v = u64::from_str_radix(&text, 16)
                        .map_err(|_| CompileError::new(loc, "hex literal too large"))?;
                    toks.push(Token {
                        tok: Tok::Int(v as i64),
                        loc,
                    });
                } else {
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        text.push(bytes[i] as char);
                        bump!();
                    }
                    let v: i64 = text
                        .parse()
                        .map_err(|_| CompileError::new(loc, "decimal literal too large"))?;
                    toks.push(Token {
                        tok: Tok::Int(v),
                        loc,
                    });
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let mut text = String::new();
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    text.push(bytes[i] as char);
                    bump!();
                }
                let tok = match text.as_str() {
                    "int" => Tok::KwInt,
                    "u32" => Tok::KwU32,
                    "void" => Tok::KwVoid,
                    "if" => Tok::KwIf,
                    "else" => Tok::KwElse,
                    "while" => Tok::KwWhile,
                    "for" => Tok::KwFor,
                    "return" => Tok::KwReturn,
                    "break" => Tok::KwBreak,
                    "continue" => Tok::KwContinue,
                    "const" => Tok::KwConst,
                    "out" => Tok::KwOut,
                    _ => Tok::Ident(text),
                };
                toks.push(Token { tok, loc });
            }
            _ => {
                let two = |a: u8, b: u8| -> bool { c == a && bytes.get(i + 1) == Some(&b) };
                let (tok, len) = if two(b'<', b'<') {
                    (Tok::Shl, 2)
                } else if two(b'>', b'>') {
                    (Tok::Shr, 2)
                } else if two(b'<', b'=') {
                    (Tok::Le, 2)
                } else if two(b'>', b'=') {
                    (Tok::Ge, 2)
                } else if two(b'=', b'=') {
                    (Tok::EqEq, 2)
                } else if two(b'!', b'=') {
                    (Tok::Ne, 2)
                } else if two(b'&', b'&') {
                    (Tok::AndAnd, 2)
                } else if two(b'|', b'|') {
                    (Tok::OrOr, 2)
                } else {
                    let t = match c {
                        b'(' => Tok::LParen,
                        b')' => Tok::RParen,
                        b'{' => Tok::LBrace,
                        b'}' => Tok::RBrace,
                        b'[' => Tok::LBracket,
                        b']' => Tok::RBracket,
                        b';' => Tok::Semi,
                        b',' => Tok::Comma,
                        b'=' => Tok::Assign,
                        b'+' => Tok::Plus,
                        b'-' => Tok::Minus,
                        b'*' => Tok::Star,
                        b'/' => Tok::Slash,
                        b'%' => Tok::Percent,
                        b'&' => Tok::Amp,
                        b'|' => Tok::Pipe,
                        b'^' => Tok::Caret,
                        b'~' => Tok::Tilde,
                        b'!' => Tok::Bang,
                        b'<' => Tok::Lt,
                        b'>' => Tok::Gt,
                        other => {
                            return Err(CompileError::new(
                                loc,
                                format!("unexpected character {:?}", other as char),
                            ))
                        }
                    };
                    (t, 1)
                };
                for _ in 0..len {
                    bump!();
                }
                toks.push(Token { tok, loc });
            }
        }
    }
    toks.push(Token {
        tok: Tok::Eof,
        loc: Loc { line, col },
    });
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("int foo u32 bar"),
            vec![
                Tok::KwInt,
                Tok::Ident("foo".into()),
                Tok::KwU32,
                Tok::Ident("bar".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("0 42 0xFF 0xdeadBEEF"),
            vec![
                Tok::Int(0),
                Tok::Int(42),
                Tok::Int(255),
                Tok::Int(0xDEAD_BEEF),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn operators_maximal_munch() {
        assert_eq!(
            toks("<<=>>= <= >= == != && || < >"),
            vec![
                Tok::Shl,
                Tok::Assign,
                Tok::Shr,
                Tok::Assign,
                Tok::Le,
                Tok::Ge,
                Tok::EqEq,
                Tok::Ne,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Lt,
                Tok::Gt,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a // line\nb /* block\nstill */ c"),
            vec![
                Tok::Ident("a".into()),
                Tok::Ident("b".into()),
                Tok::Ident("c".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn locations_track_lines() {
        let ts = lex("a\n  b").unwrap();
        assert_eq!(ts[0].loc, Loc { line: 1, col: 1 });
        assert_eq!(ts[1].loc, Loc { line: 2, col: 3 });
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("int @").is_err());
        assert!(lex("/* unterminated").is_err());
        assert!(lex("0x").is_err());
    }
}
