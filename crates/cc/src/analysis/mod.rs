//! Static bit-level vulnerability analysis over the IR.
//!
//! A backward **bit-demand** dataflow: for every program point and vreg it
//! computes the set of bits that could still influence an observable output
//! (memory stores, call arguments, return values, branch conditions, `out`).
//! The complement — the *provably masked* bits — is the static layer of the
//! study: a soft-error flip in a masked bit at that point can never change
//! program output, with zero simulation.
//!
//! The lattice element is a `u64` demand mask per vreg (and per eligible
//! stack slot), ordered by inclusion; join is bitwise OR. Transfer functions
//! mirror the machine semantics of [`softerr_isa::eval_alu`] exactly — e.g.
//! addition propagates carries strictly upward, so demanding bit *i* of a
//! sum demands only bits `0..=i` of each operand; `AND` with a constant
//! masks the operand demand by that constant; a right shift by constant *k*
//! moves demand up by *k*. `Width::U32` operations that codegen physically
//! truncates (`Add`/`Sub`/`Mul`/`Shl` and the `& 0xFFFF_FFFF` idiom) confine
//! demand to the low 32 bits, which is how the analysis proves the high
//! halves of `u32` values dead on the 64-bit profile even while the dynamic
//! liveness pruner sees the register as "live".
//!
//! Roots are conservative: addresses, stored values (to untracked memory),
//! call arguments, returned values, compared/branched values, and `out`
//! operands demand every bit. Division and remainder are total in this ISA
//! (by-zero is defined, never a trap), so a fully-dead quotient really is
//! dead. The analysis is a fixpoint over the CFG (reverse-iterated until
//! stable), so loops are handled soundly.
//!
//! Results are packaged as a [`StaticVulnMap`]: per-(function, program
//! point, vreg) demand masks at def sites, entry demands for parameters,
//! and the fully-dead defs/stores the lint reports. Codegen carries the def
//! masks through register allocation onto physical writeback sites (see
//! `Program::wb_masks`), which is what the injector's static pruner
//! consumes.

use crate::ir::*;
use softerr_isa::Profile;
use std::collections::HashMap;

/// Demand mask of one def site: the bits of `vreg` that may still reach an
/// observable output from this point on. `!demand & full` is provably
/// masked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DefDemand {
    /// The vreg defined at this site.
    pub vreg: VReg,
    /// Demand mask (bit set ⇒ potentially vulnerable).
    pub demand: u64,
}

/// A fully-dead site reported by the lint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeadSite {
    /// A def none of whose bits are ever demanded (and the instruction has
    /// no side effects), at `(block, inst index)`.
    Def {
        /// Block id.
        block: BlockId,
        /// Instruction index within the block.
        inst: usize,
        /// The dead vreg.
        vreg: VReg,
    },
    /// A scalar slot store none of whose stored bits are ever re-loaded,
    /// at `(block, inst index)`.
    Store {
        /// Block id.
        block: BlockId,
        /// Instruction index within the block.
        inst: usize,
        /// The slot written.
        slot: SlotId,
    },
}

/// Per-function analysis result.
#[derive(Debug, Clone)]
pub struct FuncVuln {
    /// Function name.
    pub name: String,
    /// Demand mask per def site, keyed by `(block, inst index)`.
    pub def_demand: HashMap<(BlockId, usize), DefDemand>,
    /// Entry demand per parameter, in ABI order (parallel to
    /// `IrFunc::params`).
    pub param_demand: Vec<(VReg, u64)>,
    /// Fully-dead defs and slot stores (the lint's input).
    pub dead: Vec<DeadSite>,
}

/// The static vulnerability map of one compiled module: bit-demand masks at
/// every def site of every function, plus summary accessors used by the
/// `repro vuln` report.
#[derive(Debug, Clone)]
pub struct StaticVulnMap {
    /// Per-function results, in `IrModule::funcs` order.
    pub funcs: Vec<FuncVuln>,
    /// Register width of the analyzed profile (32 or 64).
    pub xlen: u32,
}

/// Word-width demand mask for a profile (all bits demanded).
pub fn full_mask(profile: Profile) -> u64 {
    match profile {
        Profile::A32 => 0xFFFF_FFFF,
        Profile::A64 => !0,
    }
}

/// All bits at or below the highest set bit of `m` (carry smear: the
/// operand bits an addition needs to produce the demanded result bits).
fn smear_down(m: u64) -> u64 {
    if m == 0 {
        0
    } else {
        let h = 63 - m.leading_zeros();
        if h == 63 {
            !0
        } else {
            (1u64 << (h + 1)) - 1
        }
    }
}

/// All bits at or above the lowest set bit of `m`, clipped to `full`.
fn smear_up(m: u64, full: u64) -> u64 {
    if m == 0 {
        0
    } else {
        (!0u64 << m.trailing_zeros()) & full
    }
}

const LOW32: u64 = 0xFFFF_FFFF;

/// Dataflow environment at one program point: demand per vreg and per
/// tracked slot. Join is pointwise OR.
#[derive(Clone, PartialEq, Eq)]
struct Env {
    vregs: Vec<u64>,
    slots: Vec<u64>,
}

impl Env {
    fn zero(nvregs: usize, nslots: usize) -> Env {
        Env {
            vregs: vec![0; nvregs],
            slots: vec![0; nslots],
        }
    }

    fn join(&mut self, other: &Env) {
        for (a, b) in self.vregs.iter_mut().zip(&other.vregs) {
            *a |= b;
        }
        for (a, b) in self.slots.iter_mut().zip(&other.slots) {
            *a |= b;
        }
    }
}

/// The per-function analysis driver.
struct Analyzer<'a> {
    f: &'a IrFunc,
    profile: Profile,
    full: u64,
    /// Demand mask a variable shift amount contributes (low `log2(xlen)`
    /// bits — `eval_alu` masks shift counts by `xlen - 1`).
    shift_amount_mask: u64,
    /// Slots eligible for demand tracking: scalar, never address-taken,
    /// accessed at one consistent width. `None` ⇒ untracked (conservative).
    slot_width: Vec<Option<Width>>,
}

impl<'a> Analyzer<'a> {
    fn new(f: &'a IrFunc, profile: Profile) -> Analyzer<'a> {
        let full = full_mask(profile);
        let shift_amount_mask = u64::from(profile.xlen() - 1);
        // A slot is trackable when its address never escapes and every
        // access agrees on a width: then stores fully determine the bits
        // loads can see, and a store kills the slot's prior demand.
        let mut slot_width: Vec<Option<Width>> = f
            .slots
            .iter()
            .map(|s| (!s.addr_taken).then_some(s.elem))
            .collect();
        let mut seen: Vec<Option<Width>> = vec![None; f.slots.len()];
        for b in &f.blocks {
            for inst in &b.insts {
                let (slot, w) = match inst {
                    Inst::LoadSlot { w, slot, .. } | Inst::StoreSlot { w, slot, .. } => (*slot, *w),
                    Inst::SlotAddr { slot, .. } => {
                        slot_width[*slot] = None;
                        continue;
                    }
                    _ => continue,
                };
                match seen[slot] {
                    None => seen[slot] = Some(w),
                    Some(prev) if prev == w => {}
                    Some(_) => slot_width[slot] = None,
                }
            }
        }
        Analyzer {
            f,
            profile,
            full,
            shift_amount_mask,
            slot_width,
        }
    }

    /// Demand contributed to loaded/stored bits of width `w`.
    fn width_mask(&self, w: Width) -> u64 {
        match w {
            Width::Word => self.full,
            Width::U32 => LOW32,
        }
    }

    fn add(&self, env: &mut Env, op: Operand, demand: u64) {
        if let Operand::V(v) = op {
            env.vregs[v as usize] |= demand;
        }
    }

    fn root(&self, env: &mut Env, op: Operand) {
        self.add(env, op, self.full);
    }

    /// Operand demands of `a op b` (width `w`) given demand `d` on the
    /// result. Mirrors `eval_alu`: every set bit in the returned masks can
    /// genuinely influence a demanded result bit; every cleared bit
    /// provably cannot.
    fn bin_demands(&self, op: BinOp, w: Width, d: u64, a: Operand, b: Operand) -> (u64, u64) {
        // Operations codegen truncates to 32 bits on A64 (`maybe_mask` and
        // the `& 0xFFFF_FFFF` idiom): result bits 32.. are constant zero,
        // so only the low-32 part of the demand reaches the operands. The
        // untruncated u32 ops (And/Or/Xor/Shr/Div/Rem) preserve the
        // zero-extension invariant without masking and transfer at full
        // width.
        let truncated = w == Width::U32
            && (matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Shl)
                || (op == BinOp::And && b == Operand::C(0xFFFF_FFFF)));
        let d = if truncated { d & LOW32 } else { d };
        let full = self.full;
        let konst = |o: Operand| match (w, o) {
            // gen_bin truncates u32 constants before selection.
            (Width::U32, Operand::C(c)) => Some(c as u32 as u64),
            (_, Operand::C(c)) => Some(c as u64 & full),
            _ => None,
        };
        match op {
            // Carries/borrows/partial products propagate strictly upward:
            // result bit i depends only on operand bits 0..=i.
            BinOp::Add | BinOp::Sub | BinOp::Mul => (smear_down(d), smear_down(d)),
            // Total in this ISA (by-zero defined, no trap), but any
            // demanded result bit may depend on every operand bit.
            BinOp::Div { .. } | BinOp::Rem { .. } => {
                if d == 0 {
                    (0, 0)
                } else {
                    (full, full)
                }
            }
            BinOp::And => {
                let da = konst(b).map_or(d, |c| d & c);
                let db = konst(a).map_or(d, |c| d & c);
                (da, db)
            }
            BinOp::Or => {
                let da = konst(b).map_or(d, |c| d & !c);
                let db = konst(a).map_or(d, |c| d & !c);
                (da, db)
            }
            BinOp::Xor => (d, d),
            BinOp::Shl => match konst(b) {
                Some(k) => {
                    let k = (k & self.shift_amount_mask) as u32;
                    (d >> k, 0)
                }
                None => {
                    let amount = if d == 0 { 0 } else { self.shift_amount_mask };
                    (smear_down(d), amount)
                }
            },
            BinOp::Shr { arith } => match konst(b) {
                Some(k) => {
                    let k = (k & self.shift_amount_mask) as u32;
                    let mut da = (d << k) & full;
                    // Arithmetic shifts replicate the sign bit into the
                    // vacated high positions.
                    if arith && k > 0 {
                        let vacated = (full << (self.profile.xlen() - k)) & full;
                        if d & vacated != 0 {
                            da |= 1 << (self.profile.xlen() - 1);
                        }
                    }
                    (da, 0)
                }
                None => {
                    let amount = if d == 0 { 0 } else { self.shift_amount_mask };
                    // Any demanded bit may come from any higher operand
                    // bit; for Sra the sign bit (top of `full`) is already
                    // inside the smear.
                    (smear_up(d, full), amount)
                }
            },
        }
    }

    /// Backward transfer of one instruction. Returns the demand that was on
    /// the instruction's def (before the kill), if it defines one.
    fn transfer(&self, inst: &Inst, env: &mut Env) -> Option<u64> {
        let def_demand = inst.def().map(|d| {
            let dm = env.vregs[d as usize];
            env.vregs[d as usize] = 0;
            dm
        });
        match inst {
            Inst::Bin { op, w, a, b, .. } => {
                let d = def_demand.unwrap_or(0);
                let (da, db) = self.bin_demands(*op, *w, d, *a, *b);
                self.add(env, *a, da);
                self.add(env, *b, db);
            }
            Inst::Cmp { a, b, .. } => {
                // One demanded result bit collapses to full demand on both
                // words: any operand bit can swing a comparison.
                if def_demand.unwrap_or(0) != 0 {
                    self.root(env, *a);
                    self.root(env, *b);
                }
            }
            Inst::Copy { src, .. } => {
                self.add(env, *src, def_demand.unwrap_or(0));
            }
            Inst::Load { addr, .. } => {
                // Loaded data comes from untracked memory; the address is a
                // root (a corrupted address changes which cell is read and
                // can trap).
                self.root(env, *addr);
            }
            Inst::Store { w, src, addr, .. } => {
                self.add(env, *src, self.width_mask(*w));
                self.root(env, *addr);
            }
            Inst::SlotAddr { .. } | Inst::GlobalAddr { .. } => {}
            Inst::LoadSlot { w, dst: _, slot } => {
                if self.slot_width[*slot].is_some() {
                    // A 32-bit slot load zero-extends, so only the low-32
                    // part of the def demand reaches the slot.
                    env.slots[*slot] |= def_demand.unwrap_or(0) & self.width_mask(*w);
                }
            }
            Inst::StoreSlot { w, slot, src } => {
                if self.slot_width[*slot].is_some() {
                    let s = env.slots[*slot];
                    env.slots[*slot] = 0;
                    self.add(env, *src, s & self.width_mask(*w));
                } else {
                    self.add(env, *src, self.width_mask(*w));
                }
            }
            Inst::Call { args, .. } => {
                // Calls are interprocedural roots: every argument bit may
                // matter to the callee. Non-address-taken slots are
                // invisible to the callee, so slot demands survive.
                for a in args {
                    self.root(env, *a);
                }
            }
            Inst::Out { src } => self.root(env, *src),
        }
        def_demand
    }

    /// Backward transfer of a terminator (executed first, since the walk is
    /// backwards).
    fn transfer_term(&self, term: &Term, env: &mut Env) {
        match term {
            Term::Ret(Some(op)) => self.root(env, *op),
            Term::Ret(None) | Term::Jmp(_) => {}
            Term::CondBr { a, b, .. } => {
                self.root(env, *a);
                self.root(env, *b);
            }
        }
    }

    fn run(&self) -> FuncVuln {
        let nv = self.f.next_vreg as usize;
        let ns = self.f.slots.len();
        let nb = self.f.blocks.len();
        // in[b]: demand at block entry. Fixpoint: the lattice is finite
        // (64 bits per vreg/slot) and the transfer is monotone, so
        // reverse-order round-robin iteration terminates.
        let mut block_in: Vec<Env> = vec![Env::zero(nv, ns); nb];
        loop {
            let mut changed = false;
            for id in (0..nb).rev() {
                let mut env = Env::zero(nv, ns);
                for s in self.f.blocks[id].term.succs() {
                    env.join(&block_in[s]);
                }
                self.transfer_term(&self.f.blocks[id].term, &mut env);
                for inst in self.f.blocks[id].insts.iter().rev() {
                    self.transfer(inst, &mut env);
                }
                if env != block_in[id] {
                    block_in[id] = env;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // Recording pass: re-walk every block once, capturing the demand on
        // each def at its def site and the fully-dead sites for the lint.
        let mut def_demand = HashMap::new();
        let mut dead = Vec::new();
        for id in 0..nb {
            let mut env = Env::zero(nv, ns);
            for s in self.f.blocks[id].term.succs() {
                env.join(&block_in[s]);
            }
            self.transfer_term(&self.f.blocks[id].term, &mut env);
            for (ii, inst) in self.f.blocks[id].insts.iter().enumerate().rev() {
                if let Inst::StoreSlot { w, slot, .. } = inst {
                    if self.slot_width[*slot].is_some()
                        && env.slots[*slot] & self.width_mask(*w) == 0
                    {
                        dead.push(DeadSite::Store {
                            block: id,
                            inst: ii,
                            slot: *slot,
                        });
                    }
                }
                let dm = self.transfer(inst, &mut env);
                if let (Some(dm), Some(vreg)) = (dm, inst.def()) {
                    def_demand.insert((id, ii), DefDemand { vreg, demand: dm });
                    if dm == 0 && !inst.has_side_effects() {
                        dead.push(DeadSite::Def {
                            block: id,
                            inst: ii,
                            vreg,
                        });
                    }
                }
            }
        }
        dead.sort_by_key(|d| match *d {
            DeadSite::Def { block, inst, .. } | DeadSite::Store { block, inst, .. } => {
                (block, inst)
            }
        });
        let param_demand = self
            .f
            .params
            .iter()
            .map(|&(v, _)| (v, block_in[0].vregs[v as usize]))
            .collect();
        FuncVuln {
            name: self.f.name.clone(),
            def_demand,
            param_demand,
            dead,
        }
    }
}

impl StaticVulnMap {
    /// Runs the bit-demand analysis over every function of `ir` under
    /// `profile`'s width semantics.
    pub fn analyze(ir: &IrModule, profile: Profile) -> StaticVulnMap {
        StaticVulnMap {
            funcs: ir
                .funcs
                .iter()
                .map(|f| Analyzer::new(f, profile).run())
                .collect(),
            xlen: profile.xlen(),
        }
    }

    /// The per-function result for `name`, if present.
    pub fn func(&self, name: &str) -> Option<&FuncVuln> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// Total def sites across all functions.
    pub fn def_sites(&self) -> usize {
        self.funcs.iter().map(|f| f.def_demand.len()).sum()
    }

    /// Total provably-masked bits across all def sites.
    pub fn masked_bits(&self) -> u64 {
        let full = if self.xlen == 32 { LOW32 } else { !0 };
        self.funcs
            .iter()
            .flat_map(|f| f.def_demand.values())
            .map(|d| u64::from((!d.demand & full).count_ones()))
            .sum()
    }

    /// Fraction of def-site bits that are provably masked, in `[0, 1]`.
    /// This is the static analogue of `1 - AVF` for values at their def
    /// points; `0.0` when the module has no def sites.
    pub fn masked_fraction(&self) -> f64 {
        let sites = self.def_sites() as u64;
        if sites == 0 {
            return 0.0;
        }
        self.masked_bits() as f64 / (sites * u64::from(self.xlen)) as f64
    }

    /// Total fully-dead sites (defs + stores) across all functions.
    pub fn dead_sites(&self) -> usize {
        self.funcs.iter().map(|f| f.dead.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Compiler, OptLevel};
    use softerr_isa::eval_alu;

    fn analyze(src: &str, profile: Profile, level: OptLevel) -> (IrModule, StaticVulnMap) {
        let ir = Compiler::new(profile, level)
            .compile_to_ir(src)
            .expect("compile");
        let map = StaticVulnMap::analyze(&ir, profile);
        (ir, map)
    }

    /// Demand on the def feeding a `return` is full (returns are roots).
    #[test]
    fn return_is_a_full_root() {
        let (ir, map) = analyze(
            "int f(int x) { return x + 1; }
             void main() { out(f(3)); }",
            Profile::A64,
            OptLevel::O0,
        );
        let vf = map.func("f").expect("f analyzed");
        let irf = ir.funcs.iter().find(|f| f.name == "f").expect("f in IR");
        // Whatever vreg the Ret consumes must carry full demand at its def.
        let ret_vregs: Vec<VReg> = irf
            .blocks
            .iter()
            .filter_map(|b| match &b.term {
                Term::Ret(Some(Operand::V(v))) => Some(*v),
                _ => None,
            })
            .collect();
        assert!(!ret_vregs.is_empty(), "no value-returning Ret in f");
        let full_defs: Vec<_> = vf
            .def_demand
            .values()
            .filter(|d| ret_vregs.contains(&d.vreg) && d.demand == !0)
            .collect();
        assert!(!full_defs.is_empty(), "ret operand def not fully demanded");
    }

    /// An empty function shell for exercising transfer functions directly.
    fn shell() -> IrFunc {
        IrFunc {
            name: "t".into(),
            params: vec![],
            ret: None,
            blocks: vec![],
            slots: vec![],
            next_vreg: 0,
        }
    }

    /// `(x & 0xFF) outputs` only demands the low byte of `x`'s def.
    #[test]
    fn and_mask_confines_demand() {
        let f = shell();
        let a = Analyzer::new(&f, Profile::A64);
        let (da, db) = a.bin_demands(BinOp::And, Width::Word, !0, Operand::V(0), Operand::C(0xFF));
        assert_eq!(da, 0xFF);
        assert_eq!(db, !0); // constant side: unused anyway
        let (da, _) = a.bin_demands(BinOp::Or, Width::Word, !0, Operand::V(0), Operand::C(0xFF));
        assert_eq!(da, !0xFFu64, "OR with set bits kills their demand");
    }

    /// Shift transfers move demand in the correct direction.
    #[test]
    fn shift_transfers_match_machine_semantics() {
        let f = shell();
        let a = Analyzer::new(&f, Profile::A64);
        // d on result bit 8 of `x << 4` demands operand bit 4.
        let (da, _) = a.bin_demands(
            BinOp::Shl,
            Width::Word,
            1 << 8,
            Operand::V(0),
            Operand::C(4),
        );
        assert_eq!(da, 1 << 4);
        // d on result bit 8 of `x >> 4` demands operand bit 12.
        let (da, _) = a.bin_demands(
            BinOp::Shr { arith: false },
            Width::Word,
            1 << 8,
            Operand::V(0),
            Operand::C(4),
        );
        assert_eq!(da, 1 << 12);
        // Arithmetic shift: demanding a vacated high bit demands the sign.
        let (da, _) = a.bin_demands(
            BinOp::Shr { arith: true },
            Width::Word,
            1 << 62,
            Operand::V(0),
            Operand::C(4),
        );
        assert_eq!(da, 1 << 63, "vacated high-bit demand collapses to sign");
    }

    /// Exhaustive 8-bit check: for every op and every operand bit the
    /// transfer claims dead, flipping that bit never changes a demanded
    /// result bit. This is the soundness net for the transfer functions
    /// against the real `eval_alu`.
    #[test]
    fn transfers_are_sound_against_eval_alu() {
        use softerr_isa::AluOp;
        let f = shell();
        let profile = Profile::A64;
        let a = Analyzer::new(&f, profile);
        let cases: Vec<(BinOp, AluOp)> = vec![
            (BinOp::Add, AluOp::Add),
            (BinOp::Sub, AluOp::Sub),
            (BinOp::Mul, AluOp::Mul),
            (BinOp::And, AluOp::And),
            (BinOp::Or, AluOp::Or),
            (BinOp::Xor, AluOp::Xor),
            (BinOp::Shl, AluOp::Sll),
            (BinOp::Shr { arith: false }, AluOp::Srl),
            (BinOp::Shr { arith: true }, AluOp::Sra),
        ];
        let mut rng = 0x1234_5678_9abc_def0u64;
        let mut next = || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for (bin, alu) in cases {
            for _ in 0..200 {
                let x = next();
                let y = next();
                let d = next(); // random demand mask
                let (da, db) = a.bin_demands(bin, Width::Word, d, Operand::V(0), Operand::V(1));
                let base = eval_alu(profile, alu, x, y);
                for bit in 0..64 {
                    if da & (1 << bit) == 0 {
                        let flipped = eval_alu(profile, alu, x ^ (1 << bit), y);
                        assert_eq!(
                            base & d,
                            flipped & d,
                            "{bin:?}: dead lhs bit {bit} leaked (x={x:#x} y={y:#x} d={d:#x})"
                        );
                    }
                    if db & (1 << bit) == 0 {
                        let flipped = eval_alu(profile, alu, x, y ^ (1 << bit));
                        assert_eq!(
                            base & d,
                            flipped & d,
                            "{bin:?}: dead rhs bit {bit} leaked (x={x:#x} y={y:#x} d={d:#x})"
                        );
                    }
                }
            }
        }
    }

    /// u32 truncated ops confine demand to the low half on A64; the static
    /// map proves the high 32 bits of u32 defs dead when all consumers are
    /// u32.
    #[test]
    fn u32_defs_prove_high_half_dead_on_a64() {
        let src = "
            u32 tab[2];
            void main() {
                u32 a = tab[0];
                u32 b = tab[1];
                u32 s = 0;
                for (int i = 0; i < 8; i = i + 1) {
                    s = s + (a ^ b);
                    a = a * 31 + 7;
                    b = (b << 5) + (b >> 2);
                }
                out(s);
            }";
        let (_, map) = analyze(src, Profile::A64, OptLevel::O2);
        let f = map.func("main").expect("main analyzed");
        let confined = f
            .def_demand
            .values()
            .filter(|d| d.demand != 0 && d.demand & !LOW32 == 0)
            .count();
        assert!(
            confined > 0,
            "no u32 def had its high half proven dead: {:?}",
            f.def_demand
        );
        assert!(map.masked_fraction() > 0.0);
    }

    /// A store into a local that is never read again is reported dead; the
    /// O0 pipeline (no DCE) keeps it alive so the lint has something to
    /// find.
    #[test]
    fn dead_slot_store_is_reported_at_o0() {
        let src = "
            void main() {
                int waste = 42;
                waste = 99;
                out(1);
            }";
        let (_, map) = analyze(src, Profile::A32, OptLevel::O0);
        let f = map.func("main").expect("main analyzed");
        assert!(
            f.dead
                .iter()
                .any(|d| matches!(d, DeadSite::Store { .. } | DeadSite::Def { .. })),
            "dead local store not reported: {:?}",
            f.dead
        );
    }

    /// The fixpoint handles loops: a value live around a back edge keeps
    /// its demand.
    #[test]
    fn loop_carried_demand_is_kept() {
        let src = "
            int tab[1];
            void main() {
                int acc = tab[0];
                for (int i = 0; i < 10; i = i + 1) { acc = acc * 3 + 1; }
                out(acc);
            }";
        let (_, map) = analyze(src, Profile::A64, OptLevel::O2);
        let f = map.func("main").expect("main analyzed");
        // The accumulator def inside the loop must carry full demand (it
        // reaches the return through the back edge).
        assert!(
            f.def_demand.values().any(|d| d.demand == !0),
            "no fully-demanded def found: {:?}",
            f.def_demand
        );
    }

    /// Masked fraction is monotone-sane across levels: it stays in [0,1]
    /// and the analysis runs on every optimization level's output.
    #[test]
    fn analyze_runs_on_all_levels_and_profiles() {
        let src = "
            void main() {
                u32 h = 2166136261;
                for (int i = 0; i < 16; i = i + 1) {
                    h = ((h << 7) | (h >> 25)) + 2654435769;
                    h = h ^ (h >> 13);
                }
                out(h & 255);
            }";
        for profile in [Profile::A32, Profile::A64] {
            for level in OptLevel::ALL {
                let (_, map) = analyze(src, profile, level);
                let frac = map.masked_fraction();
                assert!((0.0..=1.0).contains(&frac), "{profile:?} {level}: {frac}");
            }
        }
    }
}
