//! Function inlining (`-O3`).
//!
//! Small non-recursive callees are spliced into their callers: vregs,
//! slots, and blocks are renumbered, parameters become copies of the
//! argument operands, and every `Ret` becomes a copy into the call's
//! destination followed by a jump to the continuation block. Functions that
//! end up with no callers (other than `main` itself) are removed, like
//! GCC's unit-local function elimination.

use crate::ir::*;
use std::collections::{HashMap, HashSet};

/// Callee size limit, in IR instructions.
const MAX_CALLEE_SIZE: usize = 60;

/// Caller growth limit: stop inlining into a function past this size.
const MAX_CALLER_SIZE: usize = 3000;

/// Rounds of inlining (covers call chains).
const ROUNDS: usize = 3;

/// Runs the inliner over the module. Returns `true` if anything changed.
pub fn run(ir: &mut IrModule) -> bool {
    let mut changed = false;
    for _ in 0..ROUNDS {
        let mut round_changed = false;
        // Which functions may be inlined this round.
        let inlinable: HashMap<String, IrFunc> = ir
            .funcs
            .iter()
            .filter(|f| {
                f.name != "main" && f.inst_count() <= MAX_CALLEE_SIZE && !calls_itself(ir, f)
            })
            .map(|f| (f.name.clone(), f.clone()))
            .collect();
        for f in &mut ir.funcs {
            let name = f.name.clone();
            round_changed |= inline_into(f, &name, &inlinable);
        }
        changed |= round_changed;
        if !round_changed {
            break;
        }
    }
    if changed {
        remove_dead_functions(ir);
    }
    changed
}

/// Whether `f` can reach itself through calls (direct or mutual recursion).
fn calls_itself(ir: &IrModule, f: &IrFunc) -> bool {
    let mut visited: HashSet<&str> = HashSet::new();
    let mut stack: Vec<&str> = callees(f).into_iter().collect();
    while let Some(name) = stack.pop() {
        if name == f.name {
            return true;
        }
        if !visited.insert(name) {
            continue;
        }
        if let Some(g) = ir.func(name) {
            stack.extend(callees(g));
        }
    }
    false
}

fn callees(f: &IrFunc) -> HashSet<&str> {
    f.blocks
        .iter()
        .flat_map(|b| &b.insts)
        .filter_map(|i| match i {
            Inst::Call { callee, .. } => Some(callee.as_str()),
            _ => None,
        })
        .collect()
}

fn inline_into(
    caller: &mut IrFunc,
    caller_name: &str,
    inlinable: &HashMap<String, IrFunc>,
) -> bool {
    let mut changed = false;
    let mut bi = 0;
    while bi < caller.blocks.len() {
        if caller.inst_count() > MAX_CALLER_SIZE {
            break;
        }
        let call_at = caller.blocks[bi].insts.iter().position(|i| {
            matches!(i, Inst::Call { callee, .. }
                if callee != caller_name && inlinable.contains_key(callee))
        });
        let Some(pos) = call_at else {
            bi += 1;
            continue;
        };
        let Inst::Call { dst, callee, args } = caller.blocks[bi].insts[pos].clone() else {
            unreachable!();
        };
        let callee_ir = &inlinable[&callee];
        splice(caller, bi, pos, dst, &args, callee_ir);
        changed = true;
        // Stay on the same block index: the head half keeps earlier calls.
    }
    changed
}

/// Splices `callee` in place of the call at `blocks[bi].insts[pos]`.
fn splice(
    caller: &mut IrFunc,
    bi: BlockId,
    pos: usize,
    dst: Option<VReg>,
    args: &[Operand],
    callee: &IrFunc,
) {
    let vreg_base = caller.next_vreg;
    caller.next_vreg += callee.next_vreg;
    let slot_base = caller.slots.len();
    caller.slots.extend(callee.slots.iter().cloned());
    let block_base = caller.blocks.len();
    let cont_block = block_base + callee.blocks.len();

    let map_v = |v: VReg| v + vreg_base;
    let map_op = |op: Operand| match op {
        Operand::V(v) => Operand::V(map_v(v)),
        c => c,
    };

    // Split the calling block.
    let mut head_insts = std::mem::take(&mut caller.blocks[bi].insts);
    let tail_insts: Vec<Inst> = head_insts.split_off(pos + 1);
    head_insts.pop(); // remove the call itself
                      // Parameter setup: copy arguments into the callee's parameter vregs.
    for ((pv, _), arg) in callee.params.iter().zip(args) {
        head_insts.push(Inst::Copy {
            dst: map_v(*pv),
            src: *arg,
        });
    }
    let old_term = std::mem::replace(&mut caller.blocks[bi].term, Term::Jmp(block_base));
    caller.blocks[bi].insts = head_insts;

    // Clone callee blocks with remapping.
    for cb in &callee.blocks {
        let mut insts: Vec<Inst> = Vec::with_capacity(cb.insts.len());
        for inst in &cb.insts {
            insts.push(remap_inst(inst, &map_op, map_v, slot_base));
        }
        let term = match &cb.term {
            Term::Ret(val) => {
                // Return value lands in the call's destination.
                if let (Some(d), Some(v)) = (dst, val) {
                    insts.push(Inst::Copy {
                        dst: d,
                        src: map_op(*v),
                    });
                }
                Term::Jmp(cont_block)
            }
            Term::Jmp(t) => Term::Jmp(t + block_base),
            Term::CondBr { cond, a, b, t, f } => Term::CondBr {
                cond: *cond,
                a: map_op(*a),
                b: map_op(*b),
                t: t + block_base,
                f: f + block_base,
            },
        };
        caller.blocks.push(Block { insts, term });
    }

    // Continuation block with the rest of the original block.
    caller.blocks.push(Block {
        insts: tail_insts,
        term: old_term,
    });
}

fn remap_inst(
    inst: &Inst,
    map_op: &impl Fn(Operand) -> Operand,
    map_v: impl Fn(VReg) -> VReg,
    slot_base: usize,
) -> Inst {
    match inst {
        Inst::Bin { op, w, dst, a, b } => Inst::Bin {
            op: *op,
            w: *w,
            dst: map_v(*dst),
            a: map_op(*a),
            b: map_op(*b),
        },
        Inst::Cmp { cond, dst, a, b } => Inst::Cmp {
            cond: *cond,
            dst: map_v(*dst),
            a: map_op(*a),
            b: map_op(*b),
        },
        Inst::Copy { dst, src } => Inst::Copy {
            dst: map_v(*dst),
            src: map_op(*src),
        },
        Inst::Load { w, dst, addr, off } => Inst::Load {
            w: *w,
            dst: map_v(*dst),
            addr: map_op(*addr),
            off: *off,
        },
        Inst::Store { w, src, addr, off } => Inst::Store {
            w: *w,
            src: map_op(*src),
            addr: map_op(*addr),
            off: *off,
        },
        Inst::SlotAddr { dst, slot } => Inst::SlotAddr {
            dst: map_v(*dst),
            slot: slot + slot_base,
        },
        Inst::GlobalAddr { dst, name } => Inst::GlobalAddr {
            dst: map_v(*dst),
            name: name.clone(),
        },
        Inst::LoadSlot { w, dst, slot } => Inst::LoadSlot {
            w: *w,
            dst: map_v(*dst),
            slot: slot + slot_base,
        },
        Inst::StoreSlot { w, slot, src } => Inst::StoreSlot {
            w: *w,
            slot: slot + slot_base,
            src: map_op(*src),
        },
        Inst::Call { dst, callee, args } => Inst::Call {
            dst: dst.map(&map_v),
            callee: callee.clone(),
            args: args.iter().map(|a| map_op(*a)).collect(),
        },
        Inst::Out { src } => Inst::Out { src: map_op(*src) },
    }
}

/// Drops functions unreachable from `main` through remaining calls.
fn remove_dead_functions(ir: &mut IrModule) {
    let mut live: HashSet<String> = HashSet::new();
    let mut stack = vec!["main".to_string()];
    while let Some(name) = stack.pop() {
        if !live.insert(name.clone()) {
            continue;
        }
        if let Some(f) = ir.func(&name) {
            for c in callees(f) {
                stack.push(c.to_string());
            }
        }
    }
    ir.funcs.retain(|f| live.contains(&f.name));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::testutil::{ir_of, run_ir};
    use softerr_isa::Profile;

    #[test]
    fn inlines_small_leaf_functions() {
        let src = "
            int sq(int x) { return x * x; }
            void main() { out(sq(6) + sq(7)); }";
        let mut ir = ir_of(src);
        let golden = run_ir(&ir, Profile::A64);
        assert!(run(&mut ir));
        assert_eq!(ir.funcs.len(), 1, "sq should be inlined and removed");
        let calls = ir.funcs[0]
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Call { .. }))
            .count();
        assert_eq!(calls, 0);
        assert_eq!(run_ir(&ir, Profile::A64), golden);
        assert_eq!(golden, vec![85]);
    }

    #[test]
    fn recursion_is_never_inlined() {
        let src = "
            int fact(int n) { if (n < 2) return 1; return n * fact(n - 1); }
            void main() { out(fact(5)); }";
        let mut ir = ir_of(src);
        run(&mut ir);
        assert_eq!(ir.funcs.len(), 2, "fact must survive");
        assert_eq!(run_ir(&ir, Profile::A64), vec![120]);
    }

    #[test]
    fn mutual_recursion_detected() {
        let src = "
            int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
            int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
            void main() { out(is_odd(7)); out(is_even(7)); }";
        let mut ir = ir_of(src);
        run(&mut ir);
        assert_eq!(run_ir(&ir, Profile::A64), vec![1, 0]);
    }

    #[test]
    fn call_chains_inline_through() {
        let src = "
            int one() { return 1; }
            int two() { return one() + one(); }
            void main() { out(two()); }";
        let mut ir = ir_of(src);
        run(&mut ir);
        assert_eq!(ir.funcs.len(), 1);
        assert_eq!(run_ir(&ir, Profile::A64), vec![2]);
    }

    #[test]
    fn void_calls_inline() {
        let src = "
            int g;
            void bump(int k) { g = g + k; }
            void main() { bump(3); bump(4); out(g); }";
        let mut ir = ir_of(src);
        run(&mut ir);
        assert_eq!(run_ir(&ir, Profile::A64), vec![7]);
    }

    #[test]
    fn inlined_locals_keep_separate_storage() {
        // Two inlined copies must not share their local array.
        let src = "
            int probe(int k) { int a[2]; a[0] = k; a[1] = k * 2; return a[0] + a[1]; }
            void main() { out(probe(1) + probe(10)); }";
        let mut ir = ir_of(src);
        let golden = run_ir(&ir, Profile::A64);
        run(&mut ir);
        assert_eq!(run_ir(&ir, Profile::A64), golden);
        assert_eq!(golden, vec![33]);
    }

    #[test]
    fn all_call_sites_replaced() {
        let src = "
            int f(int x) { return x * x + x; }
            void main() { out(f(1) + f(2) + f(3) + f(4)); }";
        let mut ir = ir_of(src);
        run(&mut ir);
        let calls = ir
            .funcs
            .iter()
            .flat_map(|f| &f.blocks)
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Call { .. }))
            .count();
        assert_eq!(calls, 0, "every call site should be inlined");
        assert_eq!(run_ir(&ir, Profile::A64), vec![2 + 6 + 12 + 20]);
    }
}
