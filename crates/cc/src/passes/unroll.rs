//! Loop unrolling by body replication (`-O3`).
//!
//! Innermost natural loops get their body (header included) duplicated once
//! and the back edge threaded through the copy, halving the number of
//! taken back-edge branches while keeping every exit test — a conservative
//! unrolling that is correct for any trip count. The dominant architectural
//! effect is the one the paper attributes to `-O3`: larger code (bigger L1I
//! footprint) for roughly equal performance.

use crate::ir::*;
use std::collections::{HashMap, HashSet};

/// Loop body size limit (IR instructions) for unrolling.
const MAX_BODY: usize = 50;

/// Replication factor (bodies are duplicated `FACTOR - 1` times).
const FACTOR: usize = 2;

fn dominators(func: &IrFunc) -> Vec<HashSet<BlockId>> {
    let n = func.blocks.len();
    let preds = func.preds();
    let all: HashSet<BlockId> = (0..n).collect();
    let mut dom: Vec<HashSet<BlockId>> = vec![all; n];
    dom[0] = HashSet::from([0]);
    let mut changed = true;
    while changed {
        changed = false;
        for b in 1..n {
            let mut new: Option<HashSet<BlockId>> = None;
            for &p in &preds[b] {
                new = Some(match new {
                    None => dom[p].clone(),
                    Some(acc) => acc.intersection(&dom[p]).copied().collect(),
                });
            }
            let mut new = new.unwrap_or_default();
            new.insert(b);
            if new != dom[b] {
                dom[b] = new;
                changed = true;
            }
        }
    }
    dom
}

fn loop_body(func: &IrFunc, head: BlockId, tail: BlockId) -> HashSet<BlockId> {
    let preds = func.preds();
    let mut body = HashSet::from([head, tail]);
    let mut stack = vec![tail];
    while let Some(b) = stack.pop() {
        if b == head {
            continue;
        }
        for &p in &preds[b] {
            if body.insert(p) {
                stack.push(p);
            }
        }
    }
    body
}

/// Runs unrolling over every function. Returns `true` if any loop grew.
pub fn run(ir: &mut IrModule) -> bool {
    let mut changed = false;
    for f in &mut ir.funcs {
        changed |= run_func(f);
    }
    changed
}

fn run_func(func: &mut IrFunc) -> bool {
    let dom = dominators(func);
    let mut back_edges: Vec<(BlockId, BlockId)> = Vec::new();
    for (tail, b) in func.blocks.iter().enumerate() {
        for head in b.term.succs() {
            if dom[tail].contains(&head) {
                back_edges.push((tail, head));
            }
        }
    }
    // Collect disjoint innermost loops up front (unrolling invalidates ids
    // for overlapping loops, so loops touching an already-chosen body are
    // skipped this round).
    let mut chosen: Vec<(BlockId, BlockId, Vec<BlockId>)> = Vec::new();
    let mut claimed: HashSet<BlockId> = HashSet::new();
    for (tail, head) in back_edges.iter().copied() {
        let body = loop_body(func, head, tail);
        let size: usize = body.iter().map(|&b| func.blocks[b].insts.len() + 1).sum();
        if size > MAX_BODY {
            continue;
        }
        // Innermost: the body contains no other back edge than tail→head.
        let inner = back_edges.iter().all(|&(t2, h2)| {
            (t2, h2) == (tail, head) || !(body.contains(&t2) && body.contains(&h2))
        });
        if !inner {
            continue;
        }
        if body.iter().any(|b| claimed.contains(b)) {
            continue;
        }
        claimed.extend(body.iter().copied());
        let mut sorted: Vec<BlockId> = body.into_iter().collect();
        sorted.sort_unstable();
        chosen.push((tail, head, sorted));
    }
    if chosen.is_empty() {
        return false;
    }

    for (tail, head, body) in chosen {
        // Vregs that carry values across iterations (live-in at the header)
        // or out of the loop (live-in at an exit target) must keep their
        // names; everything else is renamed per copy so the copies do not
        // artificially stretch live ranges (which would flood the register
        // allocator with spills).
        let (live_in, _) = crate::ir::liveness(func);
        let body_set: HashSet<BlockId> = body.iter().copied().collect();
        let mut protected: HashSet<VReg> = live_in[head].clone();
        for &b in &body {
            for s in func.blocks[b].term.succs() {
                if !body_set.contains(&s) {
                    protected.extend(live_in[s].iter().copied());
                }
            }
        }
        for _ in 0..FACTOR - 1 {
            // Fresh names for the copy's private vregs.
            let mut vreg_map: HashMap<VReg, VReg> = HashMap::new();
            for &b in &body {
                for inst in &func.blocks[b].insts {
                    if let Some(d) = inst.def() {
                        if !protected.contains(&d) && !vreg_map.contains_key(&d) {
                            vreg_map.insert(d, func.next_vreg);
                            func.next_vreg += 1;
                        }
                    }
                }
            }
            // Clone the body; in-body targets remap to the copies, exits stay.
            let base = func.blocks.len();
            let remap: HashMap<BlockId, BlockId> = body
                .iter()
                .enumerate()
                .map(|(i, &b)| (b, base + i))
                .collect();
            for &b in &body {
                let mut clone = func.blocks[b].clone();
                for inst in &mut clone.insts {
                    rename_inst(inst, &vreg_map);
                }
                rename_term(&mut clone.term, &vreg_map);
                let retarget = |t: &mut BlockId| {
                    if let Some(&n) = remap.get(t) {
                        *t = n;
                    }
                };
                match &mut clone.term {
                    Term::Jmp(t) => retarget(t),
                    Term::CondBr { t, f, .. } => {
                        retarget(t);
                        retarget(f);
                    }
                    Term::Ret(_) => {}
                }
                func.blocks.push(clone);
            }
            // The copy's back edge returns to the original head.
            let tail_copy = remap[&tail];
            let fix_back = |t: &mut BlockId| {
                if *t == remap[&head] {
                    *t = head;
                }
            };
            match &mut func.blocks[tail_copy].term {
                Term::Jmp(t) => fix_back(t),
                Term::CondBr { t, f, .. } => {
                    fix_back(t);
                    fix_back(f);
                }
                Term::Ret(_) => {}
            }
            // The original back edge now enters the copy's head.
            let enter_copy = |t: &mut BlockId| {
                if *t == head {
                    *t = remap[&head];
                }
            };
            match &mut func.blocks[tail].term {
                Term::Jmp(t) => enter_copy(t),
                Term::CondBr { t, f, .. } => {
                    enter_copy(t);
                    enter_copy(f);
                }
                Term::Ret(_) => {}
            }
        }
    }
    true
}

fn rename_op(op: &mut Operand, map: &HashMap<VReg, VReg>) {
    if let Operand::V(v) = op {
        if let Some(&n) = map.get(v) {
            *op = Operand::V(n);
        }
    }
}

fn rename_vreg(v: &mut VReg, map: &HashMap<VReg, VReg>) {
    if let Some(&n) = map.get(v) {
        *v = n;
    }
}

fn rename_inst(inst: &mut Inst, map: &HashMap<VReg, VReg>) {
    match inst {
        Inst::Bin { dst, a, b, .. } | Inst::Cmp { dst, a, b, .. } => {
            rename_op(a, map);
            rename_op(b, map);
            rename_vreg(dst, map);
        }
        Inst::Copy { dst, src } => {
            rename_op(src, map);
            rename_vreg(dst, map);
        }
        Inst::Load { dst, addr, .. } => {
            rename_op(addr, map);
            rename_vreg(dst, map);
        }
        Inst::Store { src, addr, .. } => {
            rename_op(src, map);
            rename_op(addr, map);
        }
        Inst::SlotAddr { dst, .. } | Inst::GlobalAddr { dst, .. } | Inst::LoadSlot { dst, .. } => {
            rename_vreg(dst, map);
        }
        Inst::StoreSlot { src, .. } => rename_op(src, map),
        Inst::Call { dst, args, .. } => {
            for a in args {
                rename_op(a, map);
            }
            if let Some(d) = dst {
                rename_vreg(d, map);
            }
        }
        Inst::Out { src } => rename_op(src, map),
    }
}

fn rename_term(term: &mut Term, map: &HashMap<VReg, VReg>) {
    match term {
        Term::Ret(Some(op)) => rename_op(op, map),
        Term::Ret(None) | Term::Jmp(_) => {}
        Term::CondBr { a, b, .. } => {
            rename_op(a, map);
            rename_op(b, map);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::testutil::{ir_of, run_ir};
    use softerr_isa::Profile;

    fn block_count(ir: &IrModule) -> usize {
        ir.funcs.iter().map(|f| f.blocks.len()).sum()
    }

    #[test]
    fn unrolls_simple_counted_loop() {
        let src = "
            void main() {
                int s = 0;
                for (int i = 0; i < 10; i = i + 1) s = s + i;
                out(s);
            }";
        let mut ir = ir_of(src);
        let golden = run_ir(&ir, Profile::A64);
        let before = block_count(&ir);
        assert!(run(&mut ir));
        assert!(block_count(&ir) > before, "code should grow");
        assert_eq!(run_ir(&ir, Profile::A64), golden);
        assert_eq!(golden, vec![45]);
    }

    #[test]
    fn odd_and_zero_trip_counts_stay_correct() {
        for n in [0, 1, 2, 3, 7] {
            let src = format!(
                "void main() {{ int s = 0; int i = 0; while (i < {n}) {{ s = s + i; i = i + 1; }} out(s); }}"
            );
            let mut ir = ir_of(&src);
            let golden = run_ir(&ir, Profile::A64);
            run(&mut ir);
            assert_eq!(run_ir(&ir, Profile::A64), golden, "trip count {n}");
        }
    }

    #[test]
    fn early_exit_loops_stay_correct() {
        let src = "
            void main() {
                int i = 0;
                while (i < 100) {
                    i = i + 1;
                    if (i == 5) break;
                    out(i);
                }
                out(i);
            }";
        let mut ir = ir_of(src);
        let golden = run_ir(&ir, Profile::A64);
        run(&mut ir);
        assert_eq!(run_ir(&ir, Profile::A64), golden);
        assert_eq!(golden, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn nested_loops_unroll_only_inner() {
        let src = "
            void main() {
                int s = 0;
                for (int i = 0; i < 3; i = i + 1)
                    for (int j = 0; j < 4; j = j + 1)
                        s = s + i * 10 + j;
                out(s);
            }";
        let mut ir = ir_of(src);
        let golden = run_ir(&ir, Profile::A64);
        run(&mut ir);
        assert_eq!(run_ir(&ir, Profile::A64), golden);
        assert_eq!(golden, vec![138]);
    }

    #[test]
    fn large_bodies_are_skipped() {
        // A loop body of > MAX_BODY instructions stays untouched.
        let mut stmts = String::new();
        for k in 0..60 {
            stmts.push_str(&format!("s = s + {k}; "));
        }
        let src = format!(
            "void main() {{ int s = 0; for (int i = 0; i < 3; i = i + 1) {{ {stmts} }} out(s); }}"
        );
        let mut ir = ir_of(&src);
        let before = block_count(&ir);
        let changed = run(&mut ir);
        assert!(!changed || block_count(&ir) == before);
    }
}
