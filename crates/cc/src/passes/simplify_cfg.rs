//! CFG simplification: jump threading through empty blocks, straight-line
//! block merging, trivial branch folding, and unreachable-block removal.

use crate::ir::*;
use std::collections::HashMap;

/// Runs one round of CFG simplification. Returns `true` on any change.
pub fn run(func: &mut IrFunc) -> bool {
    let mut changed = false;
    changed |= fold_trivial_branches(func);
    changed |= thread_jumps(func);
    changed |= merge_linear_chains(func);
    changed |= remove_unreachable(func);
    changed
}

/// `CondBr` with identical targets becomes `Jmp`.
fn fold_trivial_branches(func: &mut IrFunc) -> bool {
    let mut changed = false;
    for b in &mut func.blocks {
        if let Term::CondBr { t, f, .. } = b.term {
            if t == f {
                b.term = Term::Jmp(t);
                changed = true;
            }
        }
    }
    changed
}

/// Redirects edges that point at an empty block ending in `Jmp` straight to
/// its target.
fn thread_jumps(func: &mut IrFunc) -> bool {
    // forward[b] = ultimate target of the empty-jump chain starting at b.
    let mut forward: Vec<BlockId> = (0..func.blocks.len()).collect();
    #[allow(clippy::needless_range_loop)] // id is also chased through chains
    for id in 0..func.blocks.len() {
        let mut target = id;
        let mut hops = 0;
        while func.blocks[target].insts.is_empty() && hops <= func.blocks.len() {
            match func.blocks[target].term {
                Term::Jmp(next) if next != target => {
                    target = next;
                    hops += 1;
                }
                _ => break,
            }
        }
        forward[id] = target;
    }
    let mut changed = false;
    for b in &mut func.blocks {
        match &mut b.term {
            Term::Jmp(t) => {
                if forward[*t] != *t {
                    *t = forward[*t];
                    changed = true;
                }
            }
            Term::CondBr { t, f, .. } => {
                if forward[*t] != *t {
                    *t = forward[*t];
                    changed = true;
                }
                if forward[*f] != *f {
                    *f = forward[*f];
                    changed = true;
                }
            }
            Term::Ret(_) => {}
        }
    }
    changed
}

/// Merges `b → c` when `b` ends in `Jmp(c)` and `c` has exactly one
/// predecessor.
fn merge_linear_chains(func: &mut IrFunc) -> bool {
    let mut changed = false;
    loop {
        let preds = func.preds();
        let mut merged = false;
        for b in 0..func.blocks.len() {
            let Term::Jmp(c) = func.blocks[b].term else {
                continue;
            };
            if c == b || c == 0 || preds[c].len() != 1 {
                continue;
            }
            // Entry block (0) must stay first; never merge it away.
            let tail = func.blocks[c].clone();
            func.blocks[b].insts.extend(tail.insts);
            func.blocks[b].term = tail.term;
            // c becomes unreachable; clear it so remove_unreachable drops it.
            func.blocks[c].insts.clear();
            func.blocks[c].term = Term::Ret(None);
            merged = true;
            changed = true;
            break;
        }
        if !merged {
            return changed;
        }
    }
}

/// Removes blocks unreachable from the entry, compacting ids.
fn remove_unreachable(func: &mut IrFunc) -> bool {
    let n = func.blocks.len();
    let mut reachable = vec![false; n];
    let mut stack = vec![0usize];
    while let Some(b) = stack.pop() {
        if reachable[b] {
            continue;
        }
        reachable[b] = true;
        stack.extend(func.blocks[b].term.succs());
    }
    if reachable.iter().all(|r| *r) {
        return false;
    }
    let mut remap: HashMap<BlockId, BlockId> = HashMap::new();
    let mut new_blocks = Vec::new();
    for (id, b) in func.blocks.iter().enumerate() {
        if reachable[id] {
            remap.insert(id, new_blocks.len());
            new_blocks.push(b.clone());
        }
    }
    for b in &mut new_blocks {
        match &mut b.term {
            Term::Jmp(t) => *t = remap[t],
            Term::CondBr { t, f, .. } => {
                *t = remap[t];
                *f = remap[f];
            }
            Term::Ret(_) => {}
        }
    }
    func.blocks = new_blocks;
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::testutil::{ir_of, run_ir};
    use crate::passes::{const_fold, copy_prop, dce, mem2reg};
    use softerr_isa::Profile;

    #[test]
    fn removes_unreachable_blocks_after_folding() {
        let mut ir = ir_of("void main() { if (0) out(1); else out(2); while (0) out(3); }");
        let f = &mut ir.funcs[0];
        mem2reg::run(f);
        const_fold::run(f, Profile::A64);
        run(f);
        assert_eq!(run_ir(&ir, Profile::A64), vec![2]);
    }

    #[test]
    fn merges_straightline_blocks() {
        let mut ir = ir_of("void main() { int x = 1; if (x) { out(1); } out(2); }");
        let f = &mut ir.funcs[0];
        mem2reg::run(f);
        for _ in 0..4 {
            let mut c = const_fold::run(f, Profile::A64);
            c |= copy_prop::run(f);
            c |= dce::run(f);
            c |= run(f);
            if !c {
                break;
            }
        }
        assert_eq!(ir.funcs[0].blocks.len(), 1, "should collapse to one block");
        assert_eq!(run_ir(&ir, Profile::A64), vec![1, 2]);
    }

    #[test]
    fn loops_survive_simplification() {
        let src = "
            void main() {
                int s = 0;
                for (int i = 0; i < 5; i = i + 1) s = s + i;
                out(s);
            }";
        let mut ir = ir_of(src);
        let golden = run_ir(&ir, Profile::A64);
        let f = &mut ir.funcs[0];
        mem2reg::run(f);
        for _ in 0..4 {
            let mut c = const_fold::run(f, Profile::A64);
            c |= copy_prop::run(f);
            c |= dce::run(f);
            c |= run(f);
            if !c {
                break;
            }
        }
        assert_eq!(run_ir(&ir, Profile::A64), golden);
        assert_eq!(golden, vec![10]);
    }

    #[test]
    fn thread_jumps_through_empty_chains() {
        let mut f = IrFunc {
            name: "f".into(),
            params: vec![],
            ret: None,
            blocks: vec![
                Block {
                    insts: vec![],
                    term: Term::Jmp(1),
                },
                Block {
                    insts: vec![],
                    term: Term::Jmp(2),
                },
                Block {
                    insts: vec![Inst::Out { src: Operand::C(1) }],
                    term: Term::Ret(None),
                },
            ],
            slots: vec![],
            next_vreg: 0,
        };
        assert!(run(&mut f));
        assert_eq!(f.blocks.len(), 2, "empty hop should be gone");
    }

    #[test]
    fn self_loop_does_not_hang() {
        let mut f = IrFunc {
            name: "f".into(),
            params: vec![],
            ret: None,
            blocks: vec![
                Block {
                    insts: vec![],
                    term: Term::Jmp(1),
                },
                Block {
                    insts: vec![],
                    term: Term::Jmp(1),
                },
            ],
            slots: vec![],
            next_vreg: 0,
        };
        run(&mut f); // must terminate
    }
}
