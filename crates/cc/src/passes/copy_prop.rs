//! Local copy propagation.
//!
//! Within each block, uses of a vreg that was last assigned by `Copy` are
//! replaced by the copy's source, as long as neither side has been
//! redefined in between. DCE then removes the dead copies.

use crate::ir::*;
use std::collections::HashMap;

/// Runs copy propagation. Returns `true` if anything changed.
pub fn run(func: &mut IrFunc) -> bool {
    let mut changed = false;
    for b in &mut func.blocks {
        // dst → current source operand.
        let mut copies: HashMap<VReg, Operand> = HashMap::new();
        let resolve = |copies: &HashMap<VReg, Operand>, op: &mut Operand, changed: &mut bool| {
            if let Operand::V(v) = op {
                if let Some(&src) = copies.get(v) {
                    *op = src;
                    *changed = true;
                }
            }
        };
        let invalidate = |copies: &mut HashMap<VReg, Operand>, def: VReg| {
            copies.remove(&def);
            copies.retain(|_, src| *src != Operand::V(def));
        };
        for inst in &mut b.insts {
            // First rewrite the uses...
            match inst {
                Inst::Bin { a, b, .. } | Inst::Cmp { a, b, .. } => {
                    resolve(&copies, a, &mut changed);
                    resolve(&copies, b, &mut changed);
                }
                Inst::Copy { src, .. } => resolve(&copies, src, &mut changed),
                Inst::Load { addr, .. } => resolve(&copies, addr, &mut changed),
                Inst::Store { src, addr, .. } => {
                    resolve(&copies, src, &mut changed);
                    resolve(&copies, addr, &mut changed);
                }
                Inst::StoreSlot { src, .. } => resolve(&copies, src, &mut changed),
                Inst::Out { src } => resolve(&copies, src, &mut changed),
                Inst::Call { args, .. } => {
                    for a in args {
                        resolve(&copies, a, &mut changed);
                    }
                }
                Inst::SlotAddr { .. } | Inst::GlobalAddr { .. } | Inst::LoadSlot { .. } => {}
            }
            // ... then update the copy environment with the def.
            if let Some(def) = inst.def() {
                invalidate(&mut copies, def);
                if let Inst::Copy { dst, src } = inst {
                    if *src != Operand::V(*dst) {
                        copies.insert(*dst, *src);
                    }
                }
            }
        }
        match &mut b.term {
            Term::Ret(Some(op)) => resolve(&copies, op, &mut changed),
            Term::CondBr { a, b, .. } => {
                resolve(&copies, a, &mut changed);
                resolve(&copies, b, &mut changed);
            }
            _ => {}
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::testutil::{ir_of, run_ir};
    use crate::passes::{dce, mem2reg};
    use softerr_isa::Profile;

    #[test]
    fn propagates_through_chains() {
        let mut f = IrFunc {
            name: "f".into(),
            params: vec![],
            ret: None,
            blocks: vec![Block {
                insts: vec![
                    Inst::Copy {
                        dst: 0,
                        src: Operand::C(7),
                    },
                    Inst::Copy {
                        dst: 1,
                        src: Operand::V(0),
                    },
                    Inst::Copy {
                        dst: 2,
                        src: Operand::V(1),
                    },
                    Inst::Out { src: Operand::V(2) },
                ],
                term: Term::Ret(None),
            }],
            slots: vec![],
            next_vreg: 3,
        };
        assert!(run(&mut f));
        assert_eq!(
            f.blocks[0].insts[3],
            Inst::Out { src: Operand::C(7) },
            "chain should collapse to the constant"
        );
    }

    #[test]
    fn redefinition_kills_copy() {
        let mut f = IrFunc {
            name: "f".into(),
            params: vec![],
            ret: None,
            blocks: vec![Block {
                insts: vec![
                    Inst::Copy {
                        dst: 0,
                        src: Operand::C(1),
                    },
                    Inst::Copy {
                        dst: 1,
                        src: Operand::V(0),
                    },
                    // v0 redefined: v1 may no longer forward to v0.
                    Inst::Copy {
                        dst: 0,
                        src: Operand::C(2),
                    },
                    Inst::Out { src: Operand::V(1) },
                ],
                term: Term::Ret(None),
            }],
            slots: vec![],
            next_vreg: 2,
        };
        run(&mut f);
        // v1 itself still holds constant 1 via its own copy.
        assert_eq!(f.blocks[0].insts[3], Inst::Out { src: Operand::C(1) });
    }

    #[test]
    fn semantics_preserved_on_real_program() {
        let src = "
            int g(int n) { int a = n; int b = a; int c = b; return c + a; }
            void main() { out(g(21)); }";
        let base = ir_of(src);
        let mut opt = base.clone();
        for f in &mut opt.funcs {
            mem2reg::run(f);
            run(f);
            dce::run(f);
        }
        assert_eq!(run_ir(&base, Profile::A64), run_ir(&opt, Profile::A64));
        assert_eq!(run_ir(&opt, Profile::A64), vec![42]);
    }
}
