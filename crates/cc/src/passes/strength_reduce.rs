//! Strength reduction: multiplications, divisions and remainders by
//! constants become cheaper shift/add/mask sequences.
//!
//! * `x * 2^k` → `x << k`
//! * `x * (2^k + 1)` (3, 5, 9, 17…) → `(x << k) + x`
//! * unsigned `x / 2^k` → `x >> k` (logical)
//! * unsigned `x % 2^k` → `x & (2^k − 1)`
//!
//! Signed division is left alone (a shift mis-rounds negative operands).

use crate::ir::*;

fn pow2(c: i64) -> Option<u32> {
    (c > 0 && (c & (c - 1)) == 0).then(|| c.trailing_zeros())
}

/// Runs strength reduction. Returns `true` if anything changed.
pub fn run(func: &mut IrFunc) -> bool {
    let mut changed = false;
    for bi in 0..func.blocks.len() {
        let mut new_insts: Vec<Inst> = Vec::with_capacity(func.blocks[bi].insts.len());
        for inst in std::mem::take(&mut func.blocks[bi].insts) {
            match inst {
                Inst::Bin {
                    op: BinOp::Mul,
                    w,
                    dst,
                    a,
                    b,
                } => {
                    // Normalize the constant to the right.
                    let (x, c) = match (a, b) {
                        (x, Operand::C(c)) => (x, Some(c)),
                        (Operand::C(c), x) => (x, Some(c)),
                        _ => (a, None),
                    };
                    match c {
                        Some(c) if pow2(c).is_some() => {
                            let k = pow2(c).unwrap();
                            new_insts.push(Inst::Bin {
                                op: BinOp::Shl,
                                w,
                                dst,
                                a: x,
                                b: Operand::C(k as i64),
                            });
                            changed = true;
                        }
                        Some(c) if c > 2 && pow2(c - 1).is_some() => {
                            // (x << k) + x
                            let k = pow2(c - 1).unwrap();
                            let t = func.next_vreg;
                            func.next_vreg += 1;
                            new_insts.push(Inst::Bin {
                                op: BinOp::Shl,
                                w,
                                dst: t,
                                a: x,
                                b: Operand::C(k as i64),
                            });
                            new_insts.push(Inst::Bin {
                                op: BinOp::Add,
                                w,
                                dst,
                                a: Operand::V(t),
                                b: x,
                            });
                            changed = true;
                        }
                        _ => new_insts.push(inst),
                    }
                }
                Inst::Bin {
                    op: BinOp::Div { signed: false },
                    w,
                    dst,
                    a,
                    b: Operand::C(c),
                } if pow2(c).is_some() => {
                    new_insts.push(Inst::Bin {
                        op: BinOp::Shr { arith: false },
                        w,
                        dst,
                        a,
                        b: Operand::C(pow2(c).unwrap() as i64),
                    });
                    changed = true;
                }
                Inst::Bin {
                    op: BinOp::Rem { signed: false },
                    w,
                    dst,
                    a,
                    b: Operand::C(c),
                } if pow2(c).is_some() => {
                    new_insts.push(Inst::Bin {
                        op: BinOp::And,
                        w,
                        dst,
                        a,
                        b: Operand::C(c - 1),
                    });
                    changed = true;
                }
                other => new_insts.push(other),
            }
        }
        func.blocks[bi].insts = new_insts;
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::mem2reg;
    use crate::passes::testutil::{ir_of, run_ir};
    use softerr_isa::Profile;

    fn muls(f: &IrFunc) -> usize {
        f.blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Bin { op: BinOp::Mul, .. }))
            .count()
    }

    #[test]
    fn pow2_mul_becomes_shift() {
        let mut ir = ir_of("void main() { int x = 13; out(x * 8); }");
        mem2reg::run(&mut ir.funcs[0]);
        let golden = run_ir(&ir, Profile::A64);
        assert!(run(&mut ir.funcs[0]));
        assert_eq!(muls(&ir.funcs[0]), 0);
        assert_eq!(run_ir(&ir, Profile::A64), golden);
    }

    #[test]
    fn shift_add_form_for_2k_plus_1() {
        for (mult, expect) in [(3i64, 39i64), (5, 65), (9, 117), (17, 221)] {
            let src = format!("void main() {{ int x = 13; out(x * {mult}); }}");
            let mut ir = ir_of(&src);
            mem2reg::run(&mut ir.funcs[0]);
            assert!(run(&mut ir.funcs[0]));
            assert_eq!(muls(&ir.funcs[0]), 0);
            assert_eq!(run_ir(&ir, Profile::A64), vec![expect as u64]);
        }
    }

    #[test]
    fn unsigned_div_rem_reduce() {
        let src = "void main() { u32 x = 1000; out(x / 8); out(x % 8); }";
        let mut ir = ir_of(src);
        mem2reg::run(&mut ir.funcs[0]);
        let golden = run_ir(&ir, Profile::A64);
        assert!(run(&mut ir.funcs[0]));
        let divs = ir.funcs[0]
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| {
                matches!(
                    i,
                    Inst::Bin {
                        op: BinOp::Div { .. } | BinOp::Rem { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(divs, 0);
        assert_eq!(run_ir(&ir, Profile::A64), golden);
        assert_eq!(golden, vec![125, 0]);
    }

    #[test]
    fn signed_div_untouched() {
        let mut ir = ir_of("void main() { int x = -7; out(x / 2); }");
        mem2reg::run(&mut ir.funcs[0]);
        let golden = run_ir(&ir, Profile::A64);
        run(&mut ir.funcs[0]);
        // -7/2 must stay -3 (round toward zero), not -4 as a shift would give.
        assert_eq!(run_ir(&ir, Profile::A64), golden);
        assert_eq!(golden, vec![(-3i64) as u64]);
    }

    #[test]
    fn negative_and_non_pow2_untouched() {
        let mut ir = ir_of("void main() { int x = 10; out(x * -4); out(x * 7); }");
        mem2reg::run(&mut ir.funcs[0]);
        let golden = run_ir(&ir, Profile::A64);
        run(&mut ir.funcs[0]);
        assert_eq!(run_ir(&ir, Profile::A64), golden);
    }

    #[test]
    fn u32_wrap_preserved() {
        // 0x80000001 * 2 wraps in u32; shift must reproduce that.
        let src = "void main() { u32 x = 0x80000001; out(x * 2); }";
        let mut ir = ir_of(src);
        mem2reg::run(&mut ir.funcs[0]);
        let golden = run_ir(&ir, Profile::A64);
        assert!(run(&mut ir.funcs[0]));
        assert_eq!(run_ir(&ir, Profile::A64), golden);
        assert_eq!(golden, vec![2]);
    }
}
