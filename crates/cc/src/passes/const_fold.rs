//! Constant folding and local constant propagation.
//!
//! Folding uses the *exact* target semantics — [`softerr_isa::eval_alu`] with
//! the function's profile — so a folded result can never differ from what
//! the emitted instruction would have computed.

use crate::ir::*;
use softerr_isa::{eval_alu, eval_branch, AluOp, BranchCond, Profile};
use std::collections::HashMap;

/// Evaluates an IR binary op on constants with target semantics.
pub fn eval_bin(profile: Profile, op: BinOp, w: Width, a: i64, b: i64) -> i64 {
    let (a, b) = match w {
        Width::U32 => (a as u32 as i64, b as u32 as i64),
        Width::Word => (a, b),
    };
    let alu = match op {
        BinOp::Add => AluOp::Add,
        BinOp::Sub => AluOp::Sub,
        BinOp::Mul => AluOp::Mul,
        BinOp::Div { signed: true } => AluOp::Div,
        BinOp::Div { signed: false } => AluOp::Divu,
        BinOp::Rem { signed: true } => AluOp::Rem,
        BinOp::Rem { signed: false } => AluOp::Remu,
        BinOp::And => AluOp::And,
        BinOp::Or => AluOp::Or,
        BinOp::Xor => AluOp::Xor,
        BinOp::Shl => AluOp::Sll,
        BinOp::Shr { arith: true } => AluOp::Sra,
        BinOp::Shr { arith: false } => AluOp::Srl,
    };
    let raw = eval_alu(profile, alu, a as u64, b as u64);
    let masked = match w {
        Width::U32 => raw & 0xFFFF_FFFF,
        Width::Word => raw,
    };
    // Results are stored sign-agnostically; A32 values stay in the low 32
    // bits exactly as in a register.
    masked as i64
}

/// Evaluates an IR comparison on constants with target semantics.
pub fn eval_cmp(profile: Profile, cond: Cond, a: i64, b: i64) -> bool {
    let (bc, a, b) = match cond {
        Cond::Eq => (BranchCond::Eq, a, b),
        Cond::Ne => (BranchCond::Ne, a, b),
        Cond::Lt => (BranchCond::Lt, a, b),
        Cond::Ge => (BranchCond::Ge, a, b),
        Cond::Ltu => (BranchCond::Ltu, a, b),
        Cond::Geu => (BranchCond::Geu, a, b),
        Cond::Gt => (BranchCond::Lt, b, a),
        Cond::Le => (BranchCond::Ge, b, a),
        Cond::Gtu => (BranchCond::Ltu, b, a),
        Cond::Leu => (BranchCond::Geu, b, a),
    };
    eval_branch(profile, bc, a as u64, b as u64)
}

/// Runs folding + local propagation. Returns `true` if anything changed.
pub fn run(func: &mut IrFunc, profile: Profile) -> bool {
    let mut changed = false;
    for b in &mut func.blocks {
        // vreg → known constant, valid within this block.
        let mut known: HashMap<VReg, i64> = HashMap::new();
        let subst = |known: &HashMap<VReg, i64>, op: &mut Operand, changed: &mut bool| {
            if let Operand::V(v) = op {
                if let Some(&c) = known.get(v) {
                    *op = Operand::C(c);
                    *changed = true;
                }
            }
        };
        for inst in &mut b.insts {
            match inst {
                Inst::Bin { op, w, dst, a, b } => {
                    subst(&known, a, &mut changed);
                    subst(&known, b, &mut changed);
                    let folded = match (a.as_const(), b.as_const()) {
                        (Some(x), Some(y)) => {
                            Some(FoldResult::Const(eval_bin(profile, *op, *w, x, y)))
                        }
                        _ => algebraic_identity(*op, *a, *b),
                    };
                    let dst = *dst;
                    match folded {
                        Some(FoldResult::Const(c)) => {
                            *inst = Inst::Copy {
                                dst,
                                src: Operand::C(c),
                            };
                            known.insert(dst, c);
                            changed = true;
                        }
                        Some(FoldResult::Operand(o)) => {
                            *inst = Inst::Copy { dst, src: o };
                            known.remove(&dst);
                            if let Operand::C(c) = o {
                                known.insert(dst, c);
                            }
                            changed = true;
                        }
                        None => {
                            known.remove(&dst);
                        }
                    }
                }
                Inst::Cmp { cond, dst, a, b } => {
                    subst(&known, a, &mut changed);
                    subst(&known, b, &mut changed);
                    if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
                        let c = i64::from(eval_cmp(profile, *cond, x, y));
                        let dst = *dst;
                        *inst = Inst::Copy {
                            dst,
                            src: Operand::C(c),
                        };
                        known.insert(dst, c);
                        changed = true;
                    } else {
                        known.remove(dst);
                    }
                }
                Inst::Copy { dst, src } => {
                    subst(&known, src, &mut changed);
                    match src.as_const() {
                        Some(c) => {
                            known.insert(*dst, c);
                        }
                        None => {
                            known.remove(dst);
                        }
                    }
                }
                Inst::Load { dst, addr, .. } => {
                    subst(&known, addr, &mut changed);
                    known.remove(dst);
                }
                Inst::Store { src, addr, .. } => {
                    subst(&known, src, &mut changed);
                    subst(&known, addr, &mut changed);
                }
                Inst::StoreSlot { src, .. } => {
                    subst(&known, src, &mut changed);
                }
                Inst::Out { src } => {
                    subst(&known, src, &mut changed);
                }
                Inst::Call { dst, args, .. } => {
                    for a in args {
                        subst(&known, a, &mut changed);
                    }
                    if let Some(d) = dst {
                        known.remove(d);
                    }
                }
                Inst::SlotAddr { dst, .. }
                | Inst::GlobalAddr { dst, .. }
                | Inst::LoadSlot { dst, .. } => {
                    known.remove(dst);
                }
            }
        }
        // Fold the terminator.
        match &mut b.term {
            Term::CondBr {
                cond,
                a,
                b: rhs,
                t,
                f,
            } => {
                subst(&known, a, &mut changed);
                subst(&known, rhs, &mut changed);
                if let (Some(x), Some(y)) = (a.as_const(), rhs.as_const()) {
                    let target = if eval_cmp(profile, *cond, x, y) {
                        *t
                    } else {
                        *f
                    };
                    b.term = Term::Jmp(target);
                    changed = true;
                }
            }
            Term::Ret(Some(op)) => {
                subst(&known, op, &mut changed);
            }
            _ => {}
        }
    }
    changed
}

enum FoldResult {
    Const(i64),
    Operand(Operand),
}

/// `x+0`, `x*1`, `x*0`, `x&0`, `x|0`, `x^0`, `x<<0`, `x-0`, `x/1`.
fn algebraic_identity(op: BinOp, a: Operand, b: Operand) -> Option<FoldResult> {
    match (op, a, b) {
        (BinOp::Add, x, Operand::C(0)) | (BinOp::Add, Operand::C(0), x) => {
            Some(FoldResult::Operand(x))
        }
        (BinOp::Sub, x, Operand::C(0)) => Some(FoldResult::Operand(x)),
        (BinOp::Mul, _, Operand::C(0)) | (BinOp::Mul, Operand::C(0), _) => {
            Some(FoldResult::Const(0))
        }
        (BinOp::Mul, x, Operand::C(1)) | (BinOp::Mul, Operand::C(1), x) => {
            Some(FoldResult::Operand(x))
        }
        (BinOp::Div { .. }, x, Operand::C(1)) => Some(FoldResult::Operand(x)),
        (BinOp::And, _, Operand::C(0)) | (BinOp::And, Operand::C(0), _) => {
            Some(FoldResult::Const(0))
        }
        (BinOp::Or, x, Operand::C(0)) | (BinOp::Or, Operand::C(0), x) => {
            Some(FoldResult::Operand(x))
        }
        (BinOp::Xor, x, Operand::C(0)) | (BinOp::Xor, Operand::C(0), x) => {
            Some(FoldResult::Operand(x))
        }
        (BinOp::Shl | BinOp::Shr { .. }, x, Operand::C(0)) => Some(FoldResult::Operand(x)),
        // x - x, x ^ x → 0 (register self-operands).
        (BinOp::Sub | BinOp::Xor, Operand::V(x), Operand::V(y)) if x == y => {
            Some(FoldResult::Const(0))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::testutil::{ir_of, run_ir};
    use crate::passes::{dce, mem2reg};

    fn count_bins(f: &IrFunc) -> usize {
        f.blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Bin { .. } | Inst::Cmp { .. }))
            .count()
    }

    #[test]
    fn folds_constant_expressions() {
        let mut ir = ir_of("void main() { int x = 2 + 3 * 4; out(x); }");
        mem2reg::run(&mut ir.funcs[0]);
        run(&mut ir.funcs[0], Profile::A64);
        dce::run(&mut ir.funcs[0]);
        assert_eq!(count_bins(&ir.funcs[0]), 0, "everything should fold");
        assert_eq!(run_ir(&ir, Profile::A64), vec![14]);
    }

    #[test]
    fn u32_folding_wraps_at_32_bits() {
        assert_eq!(
            eval_bin(Profile::A64, BinOp::Add, Width::U32, 0xFFFF_FFFF, 1),
            0
        );
        assert_eq!(
            eval_bin(Profile::A64, BinOp::Mul, Width::U32, 0x10000, 0x10000),
            0
        );
        // Word width on A64 does not wrap at 32.
        assert_eq!(
            eval_bin(Profile::A64, BinOp::Add, Width::Word, 0xFFFF_FFFF, 1),
            0x1_0000_0000
        );
        // ... but does on A32.
        assert_eq!(
            eval_bin(Profile::A32, BinOp::Add, Width::Word, 0xFFFF_FFFF, 1),
            0
        );
    }

    #[test]
    fn division_by_zero_folds_to_target_semantics() {
        assert_eq!(
            eval_bin(Profile::A64, BinOp::Div { signed: true }, Width::Word, 7, 0),
            0
        );
        assert_eq!(
            eval_bin(
                Profile::A64,
                BinOp::Rem { signed: false },
                Width::Word,
                7,
                0
            ),
            7
        );
    }

    #[test]
    fn folds_branches_on_constants() {
        let mut ir = ir_of("void main() { if (1 < 2) out(1); else out(2); }");
        mem2reg::run(&mut ir.funcs[0]);
        let changed = run(&mut ir.funcs[0], Profile::A64);
        assert!(changed);
        let cond_brs = ir.funcs[0]
            .blocks
            .iter()
            .filter(|b| matches!(b.term, Term::CondBr { .. }))
            .count();
        assert_eq!(cond_brs, 0);
        assert_eq!(run_ir(&ir, Profile::A64), vec![1]);
    }

    #[test]
    fn propagation_is_local_but_effective() {
        let mut ir = ir_of("void main() { int a = 10; int b = a * a; int c = b - 50; out(c); }");
        mem2reg::run(&mut ir.funcs[0]);
        for _ in 0..3 {
            run(&mut ir.funcs[0], Profile::A64);
            crate::passes::copy_prop::run(&mut ir.funcs[0]);
            dce::run(&mut ir.funcs[0]);
        }
        assert_eq!(count_bins(&ir.funcs[0]), 0);
        assert_eq!(run_ir(&ir, Profile::A64), vec![50]);
    }

    #[test]
    fn identities_simplify_without_constants() {
        let mut ir = ir_of(
            "void main() { int x = 7; int y = x + 0; int z = y * 1; int w = z ^ z; out(z + w); }",
        );
        mem2reg::run(&mut ir.funcs[0]);
        for _ in 0..3 {
            run(&mut ir.funcs[0], Profile::A64);
            crate::passes::copy_prop::run(&mut ir.funcs[0]);
            dce::run(&mut ir.funcs[0]);
        }
        assert_eq!(run_ir(&ir, Profile::A64), vec![7]);
        assert_eq!(count_bins(&ir.funcs[0]), 0);
    }

    #[test]
    fn fold_matches_execution_for_shifts() {
        // Shift amounts ≥ width behave per target (mod xlen).
        for profile in [Profile::A32, Profile::A64] {
            let folded = eval_bin(profile, BinOp::Shl, Width::Word, 1, 40);
            let expected = softerr_isa::eval_alu(profile, AluOp::Sll, 1, 40) as i64;
            assert_eq!(folded, expected);
        }
    }
}
