//! Stack-slot promotion (`mem2reg`).
//!
//! Promotes every scalar slot whose address is never taken to a dedicated
//! virtual register, replacing `LoadSlot`/`StoreSlot` with copies. This is
//! the defining difference between `-O0` and `-O1` code: after promotion,
//! user variables live in registers and the register allocator (not the
//! stack) carries them — raising register-file utilization exactly as the
//! paper observes for optimized binaries.

use crate::ir::{Inst, IrFunc, SlotId, VReg};
use std::collections::HashMap;

/// Runs slot promotion on a function. Returns `true` if anything changed.
pub fn run(func: &mut IrFunc) -> bool {
    let promotable: Vec<SlotId> = func
        .slots
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.addr_taken)
        .map(|(i, _)| i)
        .collect();
    if promotable.is_empty() {
        return false;
    }
    let mut slot_reg: HashMap<SlotId, VReg> = HashMap::new();
    for slot in &promotable {
        slot_reg.insert(*slot, func.fresh_vreg());
    }
    let mut changed = false;
    for b in &mut func.blocks {
        for inst in &mut b.insts {
            match inst {
                Inst::LoadSlot { dst, slot, .. } => {
                    if let Some(&r) = slot_reg.get(slot) {
                        *inst = Inst::Copy {
                            dst: *dst,
                            src: crate::ir::Operand::V(r),
                        };
                        changed = true;
                    }
                }
                Inst::StoreSlot { slot, src, .. } => {
                    if let Some(&r) = slot_reg.get(slot) {
                        *inst = Inst::Copy { dst: r, src: *src };
                        changed = true;
                    }
                }
                _ => {}
            }
        }
    }
    compact_slots(func);
    changed
}

/// Removes slots that are no longer referenced and renumbers the rest, so
/// the frame only holds what is actually used.
fn compact_slots(func: &mut IrFunc) {
    let mut used = vec![false; func.slots.len()];
    for b in &func.blocks {
        for inst in &b.insts {
            match inst {
                Inst::SlotAddr { slot, .. }
                | Inst::LoadSlot { slot, .. }
                | Inst::StoreSlot { slot, .. } => used[*slot] = true,
                _ => {}
            }
        }
    }
    if used.iter().all(|u| *u) {
        return;
    }
    let mut remap: HashMap<SlotId, SlotId> = HashMap::new();
    let mut new_slots = Vec::new();
    for (i, slot) in func.slots.iter().enumerate() {
        if used[i] {
            remap.insert(i, new_slots.len());
            new_slots.push(slot.clone());
        }
    }
    func.slots = new_slots;
    for b in &mut func.blocks {
        for inst in &mut b.insts {
            match inst {
                Inst::SlotAddr { slot, .. }
                | Inst::LoadSlot { slot, .. }
                | Inst::StoreSlot { slot, .. } => *slot = remap[slot],
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::testutil::{ir_of, run_ir};
    use softerr_isa::Profile;

    #[test]
    fn promotes_plain_scalars() {
        let mut ir = ir_of("void main() { int x = 1; int y = x + 2; out(y); }");
        assert!(run(&mut ir.funcs[0]));
        assert!(ir.funcs[0].slots.is_empty(), "all slots should be promoted");
        let has_slot_ops = ir.funcs[0]
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i, Inst::LoadSlot { .. } | Inst::StoreSlot { .. }));
        assert!(!has_slot_ops);
    }

    #[test]
    fn keeps_address_taken_slots() {
        let mut ir = ir_of("void main() { int x = 1; int *p = &x; *p = 2; out(x); }");
        run(&mut ir.funcs[0]);
        assert_eq!(ir.funcs[0].slots.len(), 1, "x must stay in memory");
        assert_eq!(ir.funcs[0].slots[0].name, "x");
    }

    #[test]
    fn keeps_arrays() {
        let mut ir = ir_of("void main() { int a[4]; a[0] = 3; out(a[0]); }");
        run(&mut ir.funcs[0]);
        assert_eq!(ir.funcs[0].slots.len(), 1);
    }

    #[test]
    fn preserves_semantics() {
        let src = "
            int f(int a, int b) { int t = a * b; t = t + a; return t - b; }
            void main() { out(f(6, 7)); int x = 5; x = x + x; out(x); }";
        let ir0 = ir_of(src);
        let mut ir1 = ir0.clone();
        for f in &mut ir1.funcs {
            run(f);
        }
        assert_eq!(run_ir(&ir0, Profile::A64), run_ir(&ir1, Profile::A64));
    }
}
