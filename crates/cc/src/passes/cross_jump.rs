//! Cross-jumping: merge blocks with identical bodies and terminators.
//!
//! The classic `-O2` tail-merging transformation: when two blocks compute
//! the same instructions and transfer control identically, all edges are
//! redirected to one of them and the duplicate becomes unreachable.

use crate::ir::*;
use std::collections::HashMap;

/// Runs cross-jumping. Returns `true` if any blocks were merged.
pub fn run(func: &mut IrFunc) -> bool {
    let mut changed = false;
    loop {
        // Group identical blocks (skip the entry: it must remain block 0).
        let mut canon: HashMap<String, BlockId> = HashMap::new();
        let mut redirect: HashMap<BlockId, BlockId> = HashMap::new();
        for (id, b) in func.blocks.iter().enumerate() {
            let fingerprint = format!("{:?}|{:?}", b.insts, b.term);
            if id == 0 {
                continue;
            }
            match canon.get(&fingerprint) {
                Some(&first) => {
                    redirect.insert(id, first);
                }
                None => {
                    canon.insert(fingerprint, id);
                }
            }
        }
        if redirect.is_empty() {
            break;
        }
        for b in &mut func.blocks {
            match &mut b.term {
                Term::Jmp(t) => {
                    if let Some(&r) = redirect.get(t) {
                        *t = r;
                    }
                }
                Term::CondBr { t, f, .. } => {
                    if let Some(&r) = redirect.get(t) {
                        *t = r;
                    }
                    if let Some(&r) = redirect.get(f) {
                        *f = r;
                    }
                }
                Term::Ret(_) => {}
            }
        }
        changed = true;
        // Duplicates are now unreachable; drop them.
        crate::passes::simplify_cfg::run(func);
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::testutil::{ir_of, run_ir};
    use crate::passes::{copy_prop, dce, mem2reg, simplify_cfg};
    use softerr_isa::Profile;

    #[test]
    fn merges_identical_tails() {
        // Both branches do out(5); return — classic cross-jump shape.
        let src = "
            void main() {
                int x = 3;
                if (x > 1) { out(5); } else { out(5); }
            }";
        let mut ir = ir_of(src);
        let f = &mut ir.funcs[0];
        mem2reg::run(f);
        copy_prop::run(f);
        dce::run(f);
        simplify_cfg::run(f);
        let before = f.blocks.len();
        run(f);
        assert!(ir.funcs[0].blocks.len() <= before);
        assert_eq!(run_ir(&ir, Profile::A64), vec![5]);
    }

    #[test]
    fn distinct_blocks_untouched() {
        let src = "
            void main() {
                int x = 3;
                if (x > 1) { out(5); } else { out(6); }
            }";
        let mut ir = ir_of(src);
        let golden = run_ir(&ir, Profile::A64);
        let f = &mut ir.funcs[0];
        mem2reg::run(f);
        run(f);
        assert_eq!(run_ir(&ir, Profile::A64), golden);
    }

    #[test]
    fn terminates_on_self_similar_loops() {
        let src = "
            void main() {
                int i = 0;
                while (i < 3) { i = i + 1; out(i); }
                while (i < 6) { i = i + 1; out(i); }
            }";
        let mut ir = ir_of(src);
        let golden = run_ir(&ir, Profile::A64);
        let f = &mut ir.funcs[0];
        mem2reg::run(f);
        copy_prop::run(f);
        dce::run(f);
        run(f);
        assert_eq!(run_ir(&ir, Profile::A64), golden);
    }
}
