//! Optimization passes.
//!
//! Each pass is a standalone module with a `run` entry point; pipelines are
//! assembled per optimization level in [`crate::opt`]. All passes are
//! semantics-preserving — the differential test suite compiles every
//! workload at every level and requires identical program output.

pub mod const_fold;
pub mod copy_prop;
pub mod cross_jump;
pub mod cse;
pub mod dce;
pub mod inline;
pub mod licm;
pub mod mem2reg;
pub mod schedule;
pub mod simplify_cfg;
pub mod strength_reduce;
pub mod unroll;

#[cfg(test)]
pub(crate) mod testutil {
    use crate::ir::IrModule;
    use crate::{lower, parser};
    use softerr_isa::Profile;

    /// Lowers source for pass unit tests (A64 profile).
    pub fn ir_of(src: &str) -> IrModule {
        lower::lower(&parser::parse(src).unwrap(), Profile::A64).unwrap()
    }

    /// Runs a compiled module in the reference emulator and returns output.
    pub fn run_ir(ir: &IrModule, profile: Profile) -> Vec<u64> {
        let (program, _) = crate::codegen::generate(ir, profile).unwrap();
        let mut emu = softerr_isa::Emulator::new(&program);
        let out = emu.run(50_000_000).expect("program trapped");
        assert!(out.completed, "program did not halt");
        out.output
    }
}
