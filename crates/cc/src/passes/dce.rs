//! Dead-code elimination.
//!
//! Removes side-effect-free instructions whose results are never read,
//! iterating to a fixed point so that whole dead expression trees disappear.

use crate::ir::*;
use std::collections::HashSet;

/// Runs DCE. Returns `true` if anything was removed.
pub fn run(func: &mut IrFunc) -> bool {
    let mut changed = false;
    loop {
        let mut used: HashSet<VReg> = HashSet::new();
        for b in &func.blocks {
            for inst in &b.insts {
                for u in inst.uses() {
                    used.insert(u);
                }
            }
            for u in b.term.uses() {
                used.insert(u);
            }
        }
        let mut removed = false;
        for b in &mut func.blocks {
            let before = b.insts.len();
            b.insts.retain(|inst| {
                if inst.has_side_effects() {
                    return true;
                }
                match inst.def() {
                    Some(d) => {
                        // Self-copies are always dead.
                        if let Inst::Copy { dst, src } = inst {
                            if *src == Operand::V(*dst) {
                                return false;
                            }
                        }
                        used.contains(&d)
                    }
                    None => true,
                }
            });
            removed |= b.insts.len() != before;
        }
        changed |= removed;
        if !removed {
            return changed;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::mem2reg;
    use crate::passes::testutil::{ir_of, run_ir};
    use softerr_isa::Profile;

    fn inst_count(f: &IrFunc) -> usize {
        f.blocks.iter().map(|b| b.insts.len()).sum()
    }

    #[test]
    fn removes_dead_expression_trees() {
        let mut f = IrFunc {
            name: "f".into(),
            params: vec![],
            ret: None,
            blocks: vec![Block {
                insts: vec![
                    Inst::Copy {
                        dst: 0,
                        src: Operand::C(1),
                    },
                    Inst::Bin {
                        op: BinOp::Add,
                        w: Width::Word,
                        dst: 1,
                        a: Operand::V(0),
                        b: Operand::C(2),
                    },
                    Inst::Bin {
                        op: BinOp::Mul,
                        w: Width::Word,
                        dst: 2,
                        a: Operand::V(1),
                        b: Operand::V(1),
                    },
                    Inst::Out { src: Operand::C(9) },
                ],
                term: Term::Ret(None),
            }],
            slots: vec![],
            next_vreg: 3,
        };
        assert!(run(&mut f));
        assert_eq!(inst_count(&f), 1, "only the out should survive");
    }

    #[test]
    fn keeps_side_effects() {
        let mut ir = ir_of("int g(int x) { return x; } void main() { g(1); out(2); }");
        for f in &mut ir.funcs {
            mem2reg::run(f);
            run(f);
        }
        let main = ir.func("main").unwrap();
        assert!(
            main.blocks
                .iter()
                .flat_map(|b| &b.insts)
                .any(|i| matches!(i, Inst::Call { .. })),
            "call must be preserved even though its result is unused"
        );
        assert_eq!(run_ir(&ir, Profile::A64), vec![2]);
    }

    #[test]
    fn dead_stores_to_memory_are_kept() {
        // DCE must not remove stores (no alias analysis).
        let mut ir = ir_of("int g; void main() { g = 5; out(g); }");
        for f in &mut ir.funcs {
            mem2reg::run(f);
            run(f);
        }
        assert_eq!(run_ir(&ir, Profile::A64), vec![5]);
    }

    #[test]
    fn unoptimized_code_shrinks_substantially() {
        let mut ir = ir_of("void main() { int a = 1; int b = a + 2; int unused = b * b; out(a); }");
        let before = inst_count(&ir.funcs[0]);
        mem2reg::run(&mut ir.funcs[0]);
        crate::passes::copy_prop::run(&mut ir.funcs[0]);
        run(&mut ir.funcs[0]);
        assert!(inst_count(&ir.funcs[0]) < before);
        assert_eq!(run_ir(&ir, Profile::A64), vec![1]);
    }
}
