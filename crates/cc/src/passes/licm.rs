//! Loop-invariant code motion.
//!
//! Natural loops are found via dominators and back edges; pure instructions
//! (`Bin`, `Cmp`, `SlotAddr`, `GlobalAddr`) whose operands are not defined
//! inside the loop are hoisted to a freshly created preheader. To stay
//! correct without SSA, only instructions whose destination has exactly one
//! definition in the whole function are hoisted. Loads are never hoisted
//! (hoisting one past the loop guard could introduce a fault that the
//! original program would not have taken).

use crate::ir::*;
use std::collections::{HashMap, HashSet};

/// Computes immediate dominator sets (bitset per block, iterative).
fn dominators(func: &IrFunc) -> Vec<HashSet<BlockId>> {
    let n = func.blocks.len();
    let preds = func.preds();
    let all: HashSet<BlockId> = (0..n).collect();
    let mut dom: Vec<HashSet<BlockId>> = vec![all; n];
    dom[0] = HashSet::from([0]);
    let mut changed = true;
    while changed {
        changed = false;
        for b in 1..n {
            let mut new: Option<HashSet<BlockId>> = None;
            for &p in &preds[b] {
                new = Some(match new {
                    None => dom[p].clone(),
                    Some(acc) => acc.intersection(&dom[p]).copied().collect(),
                });
            }
            let mut new = new.unwrap_or_default();
            new.insert(b);
            if new != dom[b] {
                dom[b] = new;
                changed = true;
            }
        }
    }
    dom
}

/// Finds the body of the natural loop for back edge `tail → head`.
fn loop_body(func: &IrFunc, head: BlockId, tail: BlockId) -> HashSet<BlockId> {
    let preds = func.preds();
    let mut body = HashSet::from([head, tail]);
    let mut stack = vec![tail];
    while let Some(b) = stack.pop() {
        if b == head {
            continue;
        }
        for &p in &preds[b] {
            if body.insert(p) {
                stack.push(p);
            }
        }
    }
    body
}

/// Runs LICM. Returns `true` if anything was hoisted.
pub fn run(func: &mut IrFunc) -> bool {
    let dom = dominators(func);
    // Back edges: tail → head where head dominates tail.
    let mut back_edges: Vec<(BlockId, BlockId)> = Vec::new();
    for (tail, b) in func.blocks.iter().enumerate() {
        for head in b.term.succs() {
            if dom[tail].contains(&head) {
                back_edges.push((tail, head));
            }
        }
    }
    if back_edges.is_empty() {
        return false;
    }

    // Def counts across the whole function (single-def vregs are safe to
    // treat as SSA values).
    let mut def_count: HashMap<VReg, usize> = HashMap::new();
    for b in &func.blocks {
        for inst in &b.insts {
            if let Some(d) = inst.def() {
                *def_count.entry(d).or_default() += 1;
            }
        }
    }
    for (v, _) in &func.params {
        *def_count.entry(*v).or_default() += 1;
    }

    let mut changed = false;
    for (tail, head) in back_edges {
        if head == 0 {
            continue; // entry block cannot get a preheader before it simply
        }
        let body = loop_body(func, head, tail);
        // Defs inside the loop.
        let mut loop_defs: HashSet<VReg> = HashSet::new();
        for &b in &body {
            for inst in &func.blocks[b].insts {
                if let Some(d) = inst.def() {
                    loop_defs.insert(d);
                }
            }
        }
        // Collect hoistable instructions (in deterministic block order).
        let mut hoisted: Vec<Inst> = Vec::new();
        let mut hoisted_defs: HashSet<VReg> = HashSet::new();
        let mut body_sorted: Vec<BlockId> = body.iter().copied().collect();
        body_sorted.sort_unstable();
        for &bid in &body_sorted {
            let block = &mut func.blocks[bid];
            let mut kept = Vec::with_capacity(block.insts.len());
            for inst in std::mem::take(&mut block.insts) {
                let pure = matches!(
                    inst,
                    Inst::Bin { .. }
                        | Inst::Cmp { .. }
                        | Inst::SlotAddr { .. }
                        | Inst::GlobalAddr { .. }
                );
                let hoistable = pure
                    && inst.def().is_some_and(|d| def_count.get(&d) == Some(&1))
                    && inst
                        .uses()
                        .iter()
                        .all(|u| !loop_defs.contains(u) || hoisted_defs.contains(u));
                if hoistable {
                    if let Some(d) = inst.def() {
                        hoisted_defs.insert(d);
                    }
                    hoisted.push(inst);
                    changed = true;
                } else {
                    kept.push(inst);
                }
            }
            block.insts = kept;
        }
        if hoisted.is_empty() {
            continue;
        }
        // Create the preheader and retarget all non-back-edge predecessors.
        let pre = func.blocks.len();
        func.blocks.push(Block {
            insts: hoisted,
            term: Term::Jmp(head),
        });
        // Predecessors outside the loop now enter through the preheader;
        // back edges (from inside the body) keep pointing at the head.
        for (id, b) in func.blocks.iter_mut().enumerate() {
            if id == pre || body.contains(&id) {
                continue;
            }
            match &mut b.term {
                Term::Jmp(t) => {
                    if *t == head {
                        *t = pre;
                    }
                }
                Term::CondBr { t, f, .. } => {
                    if *t == head {
                        *t = pre;
                    }
                    if *f == head {
                        *f = pre;
                    }
                }
                Term::Ret(_) => {}
            }
        }
        // Only hoist one loop per invocation round to keep dominator info
        // valid; the pipeline calls passes repeatedly.
        break;
    }
    // If more loops remain, handle them recursively (dominators recomputed).
    if changed {
        run(func);
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::testutil::{ir_of, run_ir};
    use crate::passes::{copy_prop, dce, mem2reg, simplify_cfg};
    use softerr_isa::Profile;

    fn optimize(ir: &mut IrModule) -> Vec<u64> {
        let golden = run_ir(ir, Profile::A64);
        for f in &mut ir.funcs {
            mem2reg::run(f);
            for _ in 0..4 {
                let mut c = crate::passes::const_fold::run(f, Profile::A64);
                c |= copy_prop::run(f);
                c |= dce::run(f);
                c |= simplify_cfg::run(f);
                if !c {
                    break;
                }
            }
            run(f);
        }
        golden
    }

    #[test]
    fn hoists_invariant_address_computation() {
        let src = "
            int tab[8];
            void main() {
                for (int i = 0; i < 8; i = i + 1) { tab[i] = i * i; }
                out(tab[5]);
            }";
        let mut ir = ir_of(src);
        let golden = optimize(&mut ir);
        assert_eq!(run_ir(&ir, Profile::A64), golden);
        assert_eq!(golden, vec![25]);
        // The GlobalAddr of tab should now be outside the loop: the loop
        // body blocks should contain no GlobalAddr.
        let f = ir.func("main").unwrap();
        let dom = dominators(f);
        let mut in_loop_globaladdrs = 0;
        for (tail, b) in f.blocks.iter().enumerate() {
            for head in b.term.succs() {
                if dom[tail].contains(&head) {
                    for &bid in &loop_body(f, head, tail) {
                        in_loop_globaladdrs += f.blocks[bid]
                            .insts
                            .iter()
                            .filter(|i| matches!(i, Inst::GlobalAddr { .. }))
                            .count();
                    }
                }
            }
        }
        assert_eq!(in_loop_globaladdrs, 0, "GlobalAddr should be hoisted");
    }

    #[test]
    fn loop_carried_values_not_hoisted() {
        let src = "
            void main() {
                int s = 0;
                for (int i = 0; i < 5; i = i + 1) { s = s + i; }
                out(s);
            }";
        let mut ir = ir_of(src);
        let golden = optimize(&mut ir);
        assert_eq!(run_ir(&ir, Profile::A64), golden);
        assert_eq!(golden, vec![10]);
    }

    #[test]
    fn zero_trip_loops_stay_correct() {
        // The hoisted computation must be harmless when the loop never runs.
        let src = "
            int tab[4];
            void main() {
                int n = 0;
                for (int i = 0; i < n; i = i + 1) { tab[i] = 1; }
                out(tab[0]);
            }";
        let mut ir = ir_of(src);
        let golden = optimize(&mut ir);
        assert_eq!(run_ir(&ir, Profile::A64), golden);
        assert_eq!(golden, vec![0]);
    }

    #[test]
    fn nested_loops_preserved() {
        let src = "
            void main() {
                int s = 0;
                for (int i = 0; i < 4; i = i + 1)
                    for (int j = 0; j < 4; j = j + 1)
                        s = s + i * j;
                out(s);
            }";
        let mut ir = ir_of(src);
        let golden = optimize(&mut ir);
        assert_eq!(run_ir(&ir, Profile::A64), golden);
        assert_eq!(golden, vec![36]);
    }
}
