//! Local common-subexpression elimination (value numbering per block).
//!
//! Pure expressions (`Bin`, `Cmp`, `SlotAddr`, `GlobalAddr`) and memory
//! loads are cached; a repeated computation becomes a `Copy` from the first
//! result. Loads are invalidated by stores and calls (no alias analysis);
//! any cached expression is invalidated when one of its input vregs is
//! redefined.

use crate::ir::*;
use std::collections::HashMap;

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    Bin(BinOp, Width, Operand, Operand),
    Cmp(Cond, Operand, Operand),
    SlotAddr(SlotId),
    GlobalAddr(String),
    /// Load key includes a memory epoch bumped by stores/calls.
    Load(Width, Operand, i64, u64),
}

fn commutes(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor
    )
}

fn canonical_operands(op: BinOp, a: Operand, b: Operand) -> (Operand, Operand) {
    if !commutes(op) {
        return (a, b);
    }
    // Deterministic order: constants last, lower vreg first.
    match (a, b) {
        (Operand::C(_), Operand::V(_)) => (b, a),
        (Operand::V(x), Operand::V(y)) if y < x => (b, a),
        (Operand::C(x), Operand::C(y)) if y < x => (b, a),
        _ => (a, b),
    }
}

/// Runs local CSE. Returns `true` if anything changed.
pub fn run(func: &mut IrFunc) -> bool {
    let mut changed = false;
    for b in &mut func.blocks {
        let mut table: HashMap<Key, VReg> = HashMap::new();
        // Which cached keys depend on each vreg, for invalidation.
        let mut deps: HashMap<VReg, Vec<Key>> = HashMap::new();
        let mut epoch = 0u64;
        for inst in &mut b.insts {
            let key = match inst {
                Inst::Bin { op, w, a, b, .. } => {
                    let (ca, cb) = canonical_operands(*op, *a, *b);
                    Some(Key::Bin(*op, *w, ca, cb))
                }
                Inst::Cmp { cond, a, b, .. } => Some(Key::Cmp(*cond, *a, *b)),
                Inst::SlotAddr { slot, .. } => Some(Key::SlotAddr(*slot)),
                Inst::GlobalAddr { name, .. } => Some(Key::GlobalAddr(name.clone())),
                Inst::Load { w, addr, off, .. } => Some(Key::Load(*w, *addr, *off, epoch)),
                _ => None,
            };
            // Replace with a copy if the value is already available.
            if let (Some(key), Some(dst)) = (&key, inst.def()) {
                if let Some(&prev) = table.get(key) {
                    if prev != dst {
                        *inst = Inst::Copy {
                            dst,
                            src: Operand::V(prev),
                        };
                        changed = true;
                    }
                }
            }
            // Stores and calls invalidate all cached loads.
            if matches!(
                inst,
                Inst::Store { .. } | Inst::StoreSlot { .. } | Inst::Call { .. }
            ) {
                epoch += 1;
            }
            // A def invalidates every expression that reads the def'd vreg,
            // and any table entry producing it.
            if let Some(def) = inst.def() {
                if let Some(keys) = deps.remove(&def) {
                    for k in keys {
                        table.remove(&k);
                    }
                }
                table.retain(|_, v| *v != def);
                // Record the (possibly rewritten) instruction's value.
                let new_key = match inst {
                    Inst::Bin { op, w, a, b, .. } => {
                        let (ca, cb) = canonical_operands(*op, *a, *b);
                        Some(Key::Bin(*op, *w, ca, cb))
                    }
                    Inst::Cmp { cond, a, b, .. } => Some(Key::Cmp(*cond, *a, *b)),
                    Inst::SlotAddr { slot, .. } => Some(Key::SlotAddr(*slot)),
                    Inst::GlobalAddr { name, .. } => Some(Key::GlobalAddr(name.clone())),
                    Inst::Load { w, addr, off, .. } => Some(Key::Load(*w, *addr, *off, epoch)),
                    _ => None,
                };
                // Do not record expressions that read their own destination
                // (`v = v + x`): after the def, the cached operands would
                // refer to the new value and the entry would be wrong.
                if let Some(k) = new_key {
                    if !inst.uses().contains(&def) {
                        for u in inst.uses() {
                            deps.entry(u).or_default().push(k.clone());
                        }
                        table.insert(k, def);
                    }
                }
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::testutil::{ir_of, run_ir};
    use crate::passes::{copy_prop, dce, mem2reg};
    use softerr_isa::Profile;

    fn optimize(ir: &mut IrModule) {
        for f in &mut ir.funcs {
            mem2reg::run(f);
            for _ in 0..4 {
                let mut c = run(f);
                c |= copy_prop::run(f);
                c |= dce::run(f);
                if !c {
                    break;
                }
            }
        }
    }

    fn bin_count(f: &IrFunc) -> usize {
        f.blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Bin { .. }))
            .count()
    }

    #[test]
    fn eliminates_repeated_expressions() {
        let src = "void main() { int a = 6; int b = 7; out(a * b + a * b); }";
        let mut ir = ir_of(src);
        let golden = run_ir(&ir, Profile::A64);
        optimize(&mut ir);
        assert_eq!(run_ir(&ir, Profile::A64), golden);
        // a*b computed once, plus one add.
        assert_eq!(bin_count(&ir.funcs[0]), 2);
    }

    #[test]
    fn commutative_expressions_match_either_order() {
        let src = "void main() { int a = 3; int b = 4; out(a + b); out(b + a); }";
        let mut ir = ir_of(src);
        optimize(&mut ir);
        assert_eq!(bin_count(&ir.funcs[0]), 1);
        assert_eq!(run_ir(&ir, Profile::A64), vec![7, 7]);
    }

    #[test]
    fn loads_invalidated_by_stores() {
        let src = "
            int g;
            void main() { g = 1; int a = g; g = 2; int b = g; out(a + b); }";
        let mut ir = ir_of(src);
        optimize(&mut ir);
        assert_eq!(run_ir(&ir, Profile::A64), vec![3]);
    }

    #[test]
    fn repeated_loads_without_stores_merge() {
        let src = "
            int g = 5;
            void main() { out(g + g); }";
        let mut ir = ir_of(src);
        optimize(&mut ir);
        let loads = ir.funcs[0]
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Load { .. }))
            .count();
        assert_eq!(loads, 1, "second load of g should be CSE'd");
        assert_eq!(run_ir(&ir, Profile::A64), vec![10]);
    }

    #[test]
    fn redefined_operand_invalidates_expression() {
        let src =
            "void main() { int a = 1; int x = a + 2; a = 10; int y = a + 2; out(x); out(y); }";
        let mut ir = ir_of(src);
        optimize(&mut ir);
        assert_eq!(run_ir(&ir, Profile::A64), vec![3, 12]);
    }

    #[test]
    fn nonsense_sharing_never_occurs_across_calls_for_loads() {
        let src = "
            int g = 1;
            void bump() { g = g + 1; }
            void main() { int a = g; bump(); int b = g; out(a); out(b); }";
        let mut ir = ir_of(src);
        optimize(&mut ir);
        assert_eq!(run_ir(&ir, Profile::A64), vec![1, 2]);
    }
}
