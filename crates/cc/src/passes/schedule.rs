//! Within-block list scheduling.
//!
//! Models GCC's `-O2` instruction scheduling: independent instructions are
//! reordered to separate long-latency producers (loads, multiplies,
//! divides) from their consumers. All dependences are respected —
//! register def/use (including anti- and output-dependences, since the IR
//! is not SSA), memory ordering (stores and calls are barriers, loads may
//! reorder among themselves), and program-output ordering.

use crate::ir::*;

fn latency(inst: &Inst) -> u32 {
    match inst {
        Inst::Load { .. } | Inst::LoadSlot { .. } => 3,
        Inst::Bin { op: BinOp::Mul, .. } => 4,
        Inst::Bin {
            op: BinOp::Div { .. } | BinOp::Rem { .. },
            ..
        } => 12,
        Inst::Call { .. } => 8,
        _ => 1,
    }
}

fn is_mem_write(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::Store { .. } | Inst::StoreSlot { .. } | Inst::Call { .. }
    )
}

fn is_mem_read(inst: &Inst) -> bool {
    matches!(inst, Inst::Load { .. } | Inst::LoadSlot { .. })
}

fn is_output(inst: &Inst) -> bool {
    matches!(inst, Inst::Out { .. } | Inst::Call { .. })
}

/// Blocks larger than this are left alone (the O(n²) dependence build is
/// only worthwhile on ordinary block sizes).
const MAX_BLOCK: usize = 400;

/// Runs list scheduling over every block. Returns `true` on any reorder.
pub fn run(func: &mut IrFunc) -> bool {
    let mut changed = false;
    for b in &mut func.blocks {
        let n = b.insts.len();
        if !(3..=MAX_BLOCK).contains(&n) {
            continue;
        }
        // Build the dependence DAG.
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut npreds: Vec<usize> = vec![0; n];
        #[allow(clippy::needless_range_loop)] // pairwise (i, j) DAG build
        for i in 0..n {
            for j in (i + 1)..n {
                if depends(&b.insts[i], &b.insts[j]) {
                    succs[i].push(j);
                    npreds[j] += 1;
                }
            }
        }
        // Critical-path priority.
        let mut height: Vec<u32> = vec![0; n];
        for i in (0..n).rev() {
            let h = succs[i].iter().map(|&j| height[j]).max().unwrap_or(0);
            height[i] = h + latency(&b.insts[i]);
        }
        // Greedy list schedule: highest critical path first, original order
        // as the tie-break (keeps the result deterministic).
        let mut ready: Vec<usize> = (0..n).filter(|&i| npreds[i] == 0).collect();
        let mut order: Vec<usize> = Vec::with_capacity(n);
        while let Some(pos) = ready
            .iter()
            .enumerate()
            .max_by_key(|(_, &i)| (height[i], std::cmp::Reverse(i)))
            .map(|(p, _)| p)
        {
            let i = ready.swap_remove(pos);
            order.push(i);
            for &j in &succs[i] {
                npreds[j] -= 1;
                if npreds[j] == 0 {
                    ready.push(j);
                }
            }
        }
        debug_assert_eq!(order.len(), n, "scheduling dropped instructions");
        if order.iter().enumerate().any(|(k, &i)| k != i) {
            let old = std::mem::take(&mut b.insts);
            let mut moved: Vec<Option<Inst>> = old.into_iter().map(Some).collect();
            b.insts = order
                .into_iter()
                .map(|i| moved[i].take().expect("instruction scheduled twice"))
                .collect();
            changed = true;
        }
    }
    changed
}

/// Must `j` stay after `i`?
fn depends(i: &Inst, j: &Inst) -> bool {
    // Register dependences: any shared vreg between a def and a def/use.
    if let Some(d) = i.def() {
        if j.uses().contains(&d) || j.def() == Some(d) {
            return true;
        }
    }
    if let Some(d) = j.def() {
        if i.uses().contains(&d) {
            return true;
        }
    }
    // Memory ordering: writes are barriers against reads and writes.
    if is_mem_write(i) && (is_mem_read(j) || is_mem_write(j)) {
        return true;
    }
    if is_mem_read(i) && is_mem_write(j) {
        return true;
    }
    // Program output order is architectural state.
    if is_output(i) && is_output(j) {
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::mem2reg;
    use crate::passes::testutil::{ir_of, run_ir};
    use softerr_isa::Profile;

    #[test]
    fn independent_loads_hoisted_above_dependent_alu() {
        // load a; use a; load b; use b → both loads should cluster up front.
        let mut f = IrFunc {
            name: "f".into(),
            params: vec![],
            ret: None,
            blocks: vec![Block {
                insts: vec![
                    Inst::Load {
                        w: Width::Word,
                        dst: 0,
                        addr: Operand::C(0x2000),
                        off: 0,
                    },
                    Inst::Bin {
                        op: BinOp::Add,
                        w: Width::Word,
                        dst: 1,
                        a: Operand::V(0),
                        b: Operand::C(1),
                    },
                    Inst::Load {
                        w: Width::Word,
                        dst: 2,
                        addr: Operand::C(0x2008),
                        off: 0,
                    },
                    Inst::Bin {
                        op: BinOp::Add,
                        w: Width::Word,
                        dst: 3,
                        a: Operand::V(2),
                        b: Operand::C(1),
                    },
                    Inst::Out { src: Operand::V(1) },
                    Inst::Out { src: Operand::V(3) },
                ],
                term: Term::Ret(None),
            }],
            slots: vec![],
            next_vreg: 4,
        };
        assert!(run(&mut f));
        let first_two: Vec<bool> = f.blocks[0].insts[..2]
            .iter()
            .map(|i| matches!(i, Inst::Load { .. }))
            .collect();
        assert_eq!(first_two, vec![true, true], "loads should lead the block");
    }

    #[test]
    fn output_order_is_preserved() {
        let src = "void main() { int a = 1; int b = 2; out(a); out(b); out(a + b); }";
        let mut ir = ir_of(src);
        mem2reg::run(&mut ir.funcs[0]);
        run(&mut ir.funcs[0]);
        assert_eq!(run_ir(&ir, Profile::A64), vec![1, 2, 3]);
    }

    #[test]
    fn store_load_order_is_preserved() {
        let src = "
            int g;
            void main() { g = 1; int a = g; g = 2; int b = g; out(a * 10 + b); }";
        let mut ir = ir_of(src);
        mem2reg::run(&mut ir.funcs[0]);
        let golden = run_ir(&ir, Profile::A64);
        run(&mut ir.funcs[0]);
        assert_eq!(run_ir(&ir, Profile::A64), golden);
        assert_eq!(golden, vec![12]);
    }

    #[test]
    fn anti_dependences_respected() {
        // v0 = 1; out(v0); v0 = 2; out(v0) — the redefinition cannot move up.
        let mut f = IrFunc {
            name: "f".into(),
            params: vec![],
            ret: None,
            blocks: vec![Block {
                insts: vec![
                    Inst::Copy {
                        dst: 0,
                        src: Operand::C(1),
                    },
                    Inst::Out { src: Operand::V(0) },
                    Inst::Copy {
                        dst: 0,
                        src: Operand::C(2),
                    },
                    Inst::Out { src: Operand::V(0) },
                ],
                term: Term::Ret(None),
            }],
            slots: vec![],
            next_vreg: 1,
        };
        run(&mut f);
        assert_eq!(
            f.blocks[0].insts,
            vec![
                Inst::Copy {
                    dst: 0,
                    src: Operand::C(1)
                },
                Inst::Out { src: Operand::V(0) },
                Inst::Copy {
                    dst: 0,
                    src: Operand::C(2)
                },
                Inst::Out { src: Operand::V(0) },
            ]
        );
    }
}
