//! Compiler diagnostics.

use std::fmt;

/// Source location (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Loc {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A compilation error with its source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Location the error was detected at.
    pub loc: Loc,
    /// Human-readable message.
    pub msg: String,
}

impl CompileError {
    /// Creates an error at `loc`.
    pub fn new(loc: Loc, msg: impl Into<String>) -> CompileError {
        CompileError {
            loc,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.loc, self.msg)
    }
}

impl std::error::Error for CompileError {}
