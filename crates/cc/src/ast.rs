//! Abstract syntax tree for MiniC.
//!
//! MiniC is the C subset the study's workloads are written in:
//!
//! * scalar types `int` (word-sized signed, wrapping) and `u32`
//!   (32-bit unsigned with truncating semantics on 64-bit targets),
//! * pointers and one-dimensional arrays of scalars (global or local),
//! * functions, `if`/`else`, `while`, `for`, `break`, `continue`, `return`,
//! * the `out(expr);` builtin that appends a value to the program output.

use crate::error::Loc;

/// Scalar element type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scalar {
    /// Word-sized signed integer (32-bit on A32, 64-bit on A64), wrapping.
    Int,
    /// Unsigned 32-bit integer; arithmetic truncates to 32 bits.
    U32,
}

/// Value type of an expression or variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Type {
    /// A scalar value.
    Scalar(Scalar),
    /// A pointer to a scalar.
    Ptr(Scalar),
}

impl Type {
    /// The `int` type.
    pub const INT: Type = Type::Scalar(Scalar::Int);
    /// The `u32` type.
    pub const U32: Type = Type::Scalar(Scalar::U32);
}

/// Unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation `-e`.
    Neg,
    /// Logical not `!e` (yields 0 or 1).
    Not,
    /// Bitwise not `~e`.
    BitNot,
    /// Pointer dereference `*e`.
    Deref,
    /// Address-of `&lvalue`.
    AddrOf,
}

/// Binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>` (arithmetic on `int`, logical on `u32`)
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    LogAnd,
    /// `||` (short-circuit)
    LogOr,
}

impl BinOp {
    /// Whether the operator is a comparison producing 0/1.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Num(i64, Loc),
    /// Variable reference.
    Var(String, Loc),
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
        /// Location.
        loc: Loc,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Location.
        loc: Loc,
    },
    /// Function call.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Location.
        loc: Loc,
    },
    /// Array or pointer indexing `base[index]`.
    Index {
        /// Indexed expression (array variable or pointer).
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
        /// Location.
        loc: Loc,
    },
}

impl Expr {
    /// The source location of the expression.
    pub fn loc(&self) -> Loc {
        match self {
            Expr::Num(_, loc) | Expr::Var(_, loc) => *loc,
            Expr::Unary { loc, .. }
            | Expr::Binary { loc, .. }
            | Expr::Call { loc, .. }
            | Expr::Index { loc, .. } => *loc,
        }
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Local variable or array declaration.
    Decl {
        /// Variable name.
        name: String,
        /// Element type (for arrays, the element scalar as a `Scalar` type).
        ty: Type,
        /// Array length if this is an array declaration.
        len: Option<usize>,
        /// Optional scalar initializer.
        init: Option<Expr>,
        /// Location.
        loc: Loc,
    },
    /// Assignment to an lvalue.
    Assign {
        /// Target lvalue (variable, deref, or index expression).
        target: Expr,
        /// Value.
        value: Expr,
        /// Location.
        loc: Loc,
    },
    /// Conditional.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_blk: Vec<Stmt>,
        /// Else branch.
        else_blk: Vec<Stmt>,
    },
    /// While loop.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// For loop (desugared at lowering).
    For {
        /// Init statement.
        init: Option<Box<Stmt>>,
        /// Condition (empty means `true`).
        cond: Option<Expr>,
        /// Step statement.
        step: Option<Box<Stmt>>,
        /// Body.
        body: Vec<Stmt>,
    },
    /// Return.
    Return {
        /// Returned value for non-void functions.
        value: Option<Expr>,
        /// Location.
        loc: Loc,
    },
    /// Break out of the innermost loop.
    Break(Loc),
    /// Continue the innermost loop.
    Continue(Loc),
    /// Expression evaluated for side effects (function call).
    ExprStmt(Expr),
    /// `out(expr);` builtin.
    Out(Expr, Loc),
}

/// A global variable or array.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// Name.
    pub name: String,
    /// Element scalar type.
    pub scalar: Scalar,
    /// Array length; `None` for scalars.
    pub len: Option<usize>,
    /// Initializer values (empty means zero-initialized).
    pub init: Vec<i64>,
    /// Location.
    pub loc: Loc,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Func {
    /// Name.
    pub name: String,
    /// Return type; `None` for `void`.
    pub ret: Option<Type>,
    /// Parameters.
    pub params: Vec<(String, Type)>,
    /// Body.
    pub body: Vec<Stmt>,
    /// Location.
    pub loc: Loc,
}

/// A parsed translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Module {
    /// Global variables in declaration order.
    pub globals: Vec<Global>,
    /// Function definitions.
    pub funcs: Vec<Func>,
}
