//! Three-address intermediate representation.
//!
//! The IR is a conventional CFG of basic blocks over *virtual registers*
//! (non-SSA: a vreg may be assigned multiple times). Scalar locals start out
//! as *stack slots* accessed through [`Inst::LoadSlot`]/[`Inst::StoreSlot`];
//! the `mem2reg` pass (enabled at `-O1` and above) promotes
//! non-address-taken slots to vregs, which is the single largest difference
//! between `-O0` and optimized code — exactly as in GCC.

use std::collections::HashMap;
use std::fmt;

/// A virtual register index.
pub type VReg = u32;

/// A basic-block index within a function.
pub type BlockId = usize;

/// A stack-slot index within a function.
pub type SlotId = usize;

/// Operation width semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    /// Full machine word (32-bit on A32, 64-bit on A64).
    Word,
    /// Unsigned 32-bit: results are truncated to 32 bits and values maintain
    /// a zero-extended-in-register invariant.
    U32,
}

impl Width {
    /// In-memory size of a value of this width for the given word size.
    pub fn bytes(self, word_bytes: u64) -> u64 {
        match self {
            Width::Word => word_bytes,
            Width::U32 => 4,
        }
    }
}

/// An instruction operand: virtual register or constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Virtual register.
    V(VReg),
    /// Immediate constant.
    C(i64),
}

impl Operand {
    /// The vreg if this operand is a register.
    pub fn as_vreg(self) -> Option<VReg> {
        match self {
            Operand::V(v) => Some(v),
            Operand::C(_) => None,
        }
    }

    /// The constant if this operand is an immediate.
    pub fn as_const(self) -> Option<i64> {
        match self {
            Operand::V(_) => None,
            Operand::C(c) => Some(c),
        }
    }
}

/// Binary ALU operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Division (`signed` selects the signed form; by-zero yields 0).
    Div {
        /// Signed division.
        signed: bool,
    },
    /// Remainder (`signed` selects the signed form; by-zero yields lhs).
    Rem {
        /// Signed remainder.
        signed: bool,
    },
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Shift left.
    Shl,
    /// Shift right (`arith` selects sign-propagating form).
    Shr {
        /// Arithmetic shift.
        arith: bool,
    },
}

/// Comparison condition (signed and unsigned forms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Cond {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Ltu,
    Leu,
    Gtu,
    Geu,
}

impl Cond {
    /// The condition testing the same operands with the opposite result.
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Ge => Cond::Lt,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ltu => Cond::Geu,
            Cond::Geu => Cond::Ltu,
            Cond::Leu => Cond::Gtu,
            Cond::Gtu => Cond::Leu,
        }
    }

    /// The condition equivalent to this one with the operands swapped.
    pub fn swap(self) -> Cond {
        match self {
            Cond::Eq => Cond::Eq,
            Cond::Ne => Cond::Ne,
            Cond::Lt => Cond::Gt,
            Cond::Gt => Cond::Lt,
            Cond::Le => Cond::Ge,
            Cond::Ge => Cond::Le,
            Cond::Ltu => Cond::Gtu,
            Cond::Gtu => Cond::Ltu,
            Cond::Leu => Cond::Geu,
            Cond::Geu => Cond::Leu,
        }
    }
}

/// An IR instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// `dst = a op b`.
    Bin {
        /// Operation.
        op: BinOp,
        /// Width semantics.
        w: Width,
        /// Destination vreg.
        dst: VReg,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = (a cond b) ? 1 : 0`.
    Cmp {
        /// Condition.
        cond: Cond,
        /// Destination vreg.
        dst: VReg,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = src`.
    Copy {
        /// Destination vreg.
        dst: VReg,
        /// Source operand.
        src: Operand,
    },
    /// `dst = mem[addr + off]` with width `w`.
    Load {
        /// Value width (selects access size and extension).
        w: Width,
        /// Destination vreg.
        dst: VReg,
        /// Address operand.
        addr: Operand,
        /// Constant byte offset.
        off: i64,
    },
    /// `mem[addr + off] = src` with width `w`.
    Store {
        /// Value width.
        w: Width,
        /// Stored operand.
        src: Operand,
        /// Address operand.
        addr: Operand,
        /// Constant byte offset.
        off: i64,
    },
    /// `dst = &slot` (address of a stack slot).
    SlotAddr {
        /// Destination vreg.
        dst: VReg,
        /// Slot.
        slot: SlotId,
    },
    /// `dst = &global`.
    GlobalAddr {
        /// Destination vreg.
        dst: VReg,
        /// Global name.
        name: String,
    },
    /// `dst = slot` (scalar slot read; promotable by mem2reg).
    LoadSlot {
        /// Value width.
        w: Width,
        /// Destination vreg.
        dst: VReg,
        /// Slot.
        slot: SlotId,
    },
    /// `slot = src` (scalar slot write; promotable by mem2reg).
    StoreSlot {
        /// Value width.
        w: Width,
        /// Slot.
        slot: SlotId,
        /// Stored operand.
        src: Operand,
    },
    /// Function call.
    Call {
        /// Destination vreg for the return value (`None` for void calls).
        dst: Option<VReg>,
        /// Callee name.
        callee: String,
        /// Argument operands.
        args: Vec<Operand>,
    },
    /// Emit a value to the program output stream.
    Out {
        /// Emitted operand.
        src: Operand,
    },
}

impl Inst {
    /// The vreg defined by this instruction, if any.
    pub fn def(&self) -> Option<VReg> {
        match self {
            Inst::Bin { dst, .. }
            | Inst::Cmp { dst, .. }
            | Inst::Copy { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::SlotAddr { dst, .. }
            | Inst::GlobalAddr { dst, .. }
            | Inst::LoadSlot { dst, .. } => Some(*dst),
            Inst::Call { dst, .. } => *dst,
            Inst::Store { .. } | Inst::StoreSlot { .. } | Inst::Out { .. } => None,
        }
    }

    /// Appends the vregs read by this instruction to `uses`.
    pub fn uses_into(&self, uses: &mut Vec<VReg>) {
        let mut push = |op: &Operand| {
            if let Operand::V(v) = op {
                uses.push(*v);
            }
        };
        match self {
            Inst::Bin { a, b, .. } | Inst::Cmp { a, b, .. } => {
                push(a);
                push(b);
            }
            Inst::Copy { src, .. } => push(src),
            Inst::LoadSlot { .. } => {}
            Inst::Load { addr, .. } => push(addr),
            Inst::Store { src, addr, .. } => {
                push(src);
                push(addr);
            }
            Inst::StoreSlot { src, .. } => push(src),
            Inst::Call { args, .. } => {
                for a in args {
                    push(a);
                }
            }
            Inst::Out { src } => push(src),
            Inst::SlotAddr { .. } | Inst::GlobalAddr { .. } => {}
        }
    }

    /// The vregs read by this instruction.
    pub fn uses(&self) -> Vec<VReg> {
        let mut v = Vec::new();
        self.uses_into(&mut v);
        v
    }

    /// Whether this instruction has effects beyond writing its destination
    /// vreg (memory, I/O, or a call).
    pub fn has_side_effects(&self) -> bool {
        matches!(
            self,
            Inst::Store { .. } | Inst::StoreSlot { .. } | Inst::Call { .. } | Inst::Out { .. }
        )
    }
}

/// A block terminator.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// Return from the function.
    Ret(Option<Operand>),
    /// Unconditional jump.
    Jmp(BlockId),
    /// Conditional branch: `if a cond b goto t else goto f`.
    CondBr {
        /// Condition.
        cond: Cond,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
        /// Taken target.
        t: BlockId,
        /// Fall-through target.
        f: BlockId,
    },
}

impl Term {
    /// Successor block ids.
    pub fn succs(&self) -> Vec<BlockId> {
        match self {
            Term::Ret(_) => vec![],
            Term::Jmp(b) => vec![*b],
            Term::CondBr { t, f, .. } => vec![*t, *f],
        }
    }

    /// The vregs read by the terminator.
    pub fn uses(&self) -> Vec<VReg> {
        let mut v = Vec::new();
        let mut push = |op: &Operand| {
            if let Operand::V(r) = op {
                v.push(*r);
            }
        };
        match self {
            Term::Ret(Some(op)) => push(op),
            Term::Ret(None) | Term::Jmp(_) => {}
            Term::CondBr { a, b, .. } => {
                push(a);
                push(b);
            }
        }
        v
    }
}

/// A basic block.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Straight-line instructions.
    pub insts: Vec<Inst>,
    /// Terminator.
    pub term: Term,
}

/// A stack slot (scalar local, local array, or spilled value home).
#[derive(Debug, Clone, PartialEq)]
pub struct SlotInfo {
    /// Total size in bytes.
    pub size: u64,
    /// Element width for scalar access.
    pub elem: Width,
    /// Whether the slot's address escapes (`&x`, arrays); address-taken
    /// slots cannot be promoted to registers.
    pub addr_taken: bool,
    /// Debug name.
    pub name: String,
}

/// An IR function.
#[derive(Debug, Clone, PartialEq)]
pub struct IrFunc {
    /// Function name.
    pub name: String,
    /// Parameter vregs and widths, in ABI order.
    pub params: Vec<(VReg, Width)>,
    /// Return width (`None` for void).
    pub ret: Option<Width>,
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<Block>,
    /// Stack slots.
    pub slots: Vec<SlotInfo>,
    /// Next unused vreg number.
    pub next_vreg: VReg,
}

impl IrFunc {
    /// Allocates a fresh vreg.
    pub fn fresh_vreg(&mut self) -> VReg {
        let v = self.next_vreg;
        self.next_vreg += 1;
        v
    }

    /// Total instruction count (a code-size proxy used by the inliner).
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len() + 1).sum()
    }

    /// Predecessor lists for every block.
    pub fn preds(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (id, b) in self.blocks.iter().enumerate() {
            for s in b.term.succs() {
                preds[s].push(id);
            }
        }
        preds
    }
}

/// Computes per-block liveness (`live_in`, `live_out`) by iterative
/// backward dataflow. Shared by the register allocator and the loop
/// unroller.
pub fn liveness(
    func: &IrFunc,
) -> (
    Vec<std::collections::HashSet<VReg>>,
    Vec<std::collections::HashSet<VReg>>,
) {
    use std::collections::HashSet;
    let nblocks = func.blocks.len();
    let mut gen_set: Vec<HashSet<VReg>> = vec![HashSet::new(); nblocks];
    let mut kill: Vec<HashSet<VReg>> = vec![HashSet::new(); nblocks];
    for (id, b) in func.blocks.iter().enumerate() {
        for inst in &b.insts {
            for u in inst.uses() {
                if !kill[id].contains(&u) {
                    gen_set[id].insert(u);
                }
            }
            if let Some(d) = inst.def() {
                kill[id].insert(d);
            }
        }
        for u in b.term.uses() {
            if !kill[id].contains(&u) {
                gen_set[id].insert(u);
            }
        }
    }
    let mut live_in: Vec<HashSet<VReg>> = vec![HashSet::new(); nblocks];
    let mut live_out: Vec<HashSet<VReg>> = vec![HashSet::new(); nblocks];
    let mut changed = true;
    while changed {
        changed = false;
        for id in (0..nblocks).rev() {
            let mut out = HashSet::new();
            for s in func.blocks[id].term.succs() {
                out.extend(live_in[s].iter().copied());
            }
            let mut inn: HashSet<VReg> = gen_set[id].clone();
            for v in &out {
                if !kill[id].contains(v) {
                    inn.insert(*v);
                }
            }
            if out != live_out[id] || inn != live_in[id] {
                changed = true;
                live_out[id] = out;
                live_in[id] = inn;
            }
        }
    }
    (live_in, live_out)
}

/// Layout information for one global.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalLayout {
    /// Name.
    pub name: String,
    /// Element width.
    pub elem: Width,
    /// Element size in bytes (profile-dependent for `Word`).
    pub elem_bytes: u64,
    /// Element count (1 for scalars).
    pub len: usize,
    /// Initializer values (shorter than `len` means zero-fill).
    pub init: Vec<i64>,
    /// Byte offset from the data base address.
    pub offset: u64,
}

/// A lowered translation unit.
#[derive(Debug, Clone, PartialEq)]
pub struct IrModule {
    /// Functions; `main` is guaranteed to exist.
    pub funcs: Vec<IrFunc>,
    /// Global layout, offsets pre-assigned.
    pub globals: Vec<GlobalLayout>,
    /// Total data segment size in bytes.
    pub data_size: u64,
}

impl IrModule {
    /// Finds a function by name.
    pub fn func(&self, name: &str) -> Option<&IrFunc> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// Map from function name to index.
    pub fn func_index(&self) -> HashMap<&str, usize> {
        self.funcs
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.as_str(), i))
            .collect()
    }
}

impl fmt::Display for IrFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn {}(", self.name)?;
        for (i, (v, w)) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "v{v}:{w:?}")?;
        }
        writeln!(f, ")")?;
        for (id, b) in self.blocks.iter().enumerate() {
            writeln!(f, "bb{id}:")?;
            for inst in &b.insts {
                writeln!(f, "  {inst:?}")?;
            }
            writeln!(f, "  {:?}", b.term)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_negate_is_involution() {
        for c in [
            Cond::Eq,
            Cond::Ne,
            Cond::Lt,
            Cond::Le,
            Cond::Gt,
            Cond::Ge,
            Cond::Ltu,
            Cond::Leu,
            Cond::Gtu,
            Cond::Geu,
        ] {
            assert_eq!(c.negate().negate(), c);
            assert_eq!(c.swap().swap(), c);
        }
    }

    #[test]
    fn inst_def_use_classification() {
        let i = Inst::Bin {
            op: BinOp::Add,
            w: Width::Word,
            dst: 5,
            a: Operand::V(1),
            b: Operand::C(3),
        };
        assert_eq!(i.def(), Some(5));
        assert_eq!(i.uses(), vec![1]);
        assert!(!i.has_side_effects());

        let s = Inst::Store {
            w: Width::U32,
            src: Operand::V(2),
            addr: Operand::V(3),
            off: 8,
        };
        assert_eq!(s.def(), None);
        assert_eq!(s.uses(), vec![2, 3]);
        assert!(s.has_side_effects());
    }

    #[test]
    fn term_succs() {
        assert!(Term::Ret(None).succs().is_empty());
        assert_eq!(Term::Jmp(3).succs(), vec![3]);
        assert_eq!(
            Term::CondBr {
                cond: Cond::Eq,
                a: Operand::C(0),
                b: Operand::C(0),
                t: 1,
                f: 2
            }
            .succs(),
            vec![1, 2]
        );
    }

    #[test]
    fn width_bytes() {
        assert_eq!(Width::Word.bytes(4), 4);
        assert_eq!(Width::Word.bytes(8), 8);
        assert_eq!(Width::U32.bytes(8), 4);
    }
}
