//! IR → machine-code generation.
//!
//! One pass per function: linear-scan allocation ([`crate::regalloc`]),
//! frame layout, then instruction selection with label fixups for branches
//! and calls. `main` is placed first and its returns become `halt`.

use crate::analysis::{full_mask, FuncVuln, StaticVulnMap};
use crate::error::{CompileError, Loc};
use crate::ir::*;
use crate::regalloc::{allocate, scratch0, scratch1, Allocation, Loc as RLoc};
use softerr_isa::{
    AluOp, BranchCond, Instr, MemWidth, Profile, Program, Reg, CODE_BASE, DATA_BASE,
    DEFAULT_MEM_SIZE,
};
use std::collections::HashMap;

/// Per-function code-generation statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncStats {
    /// Function name.
    pub name: String,
    /// Emitted machine instructions.
    pub code_words: usize,
    /// Spill slots allocated.
    pub spills: usize,
    /// Frame size in bytes.
    pub frame_bytes: u64,
}

/// Generates a loadable [`Program`] from lowered (and optionally optimized)
/// IR.
///
/// # Errors
///
/// Returns an error if a function exceeds structural limits (branch ranges,
/// code segment size); realistic workloads never hit these.
pub fn generate(
    ir: &IrModule,
    profile: Profile,
) -> Result<(Program, Vec<FuncStats>), CompileError> {
    generate_with(ir, profile, crate::opt::verify_default())
}

/// [`generate`] with explicit control over post-regalloc verification:
/// when `verify` is on, every function's register allocation is checked
/// with [`crate::verify::verify_allocation`] before instruction selection.
///
/// # Errors
///
/// Same as [`generate`].
///
/// # Panics
///
/// When `verify` is on and the allocator broke an invariant (overlapping
/// live ranges on one register, a scratch-register assignment, an
/// unallocated vreg) — an allocator bug, not a recoverable user error.
pub fn generate_with(
    ir: &IrModule,
    profile: Profile,
    verify: bool,
) -> Result<(Program, Vec<FuncStats>), CompileError> {
    generate_annotated(ir, profile, verify, None)
}

/// [`generate_with`], additionally carrying the static bit-demand masks of
/// `vuln` through register allocation onto the emitted code: for every def
/// whose demand the analysis bounded below full width, the machine
/// instruction performing the final write of the def's home register is
/// recorded in `Program::wb_masks`. Defs that land in spill slots, no-op
/// moves, and all instructions the compiler cannot attribute exactly keep
/// the (sound) default full mask.
///
/// # Errors
///
/// Same as [`generate`].
///
/// # Panics
///
/// Same as [`generate_with`].
pub fn generate_annotated(
    ir: &IrModule,
    profile: Profile,
    verify: bool,
    vuln: Option<&StaticVulnMap>,
) -> Result<(Program, Vec<FuncStats>), CompileError> {
    let mut order: Vec<usize> = (0..ir.funcs.len()).collect();
    // main first: it is the entry point.
    order.sort_by_key(|&i| (ir.funcs[i].name != "main", i));

    let mut code: Vec<Instr> = Vec::new();
    let mut func_addr: HashMap<String, usize> = HashMap::new();
    let mut call_fixups: Vec<(usize, String)> = Vec::new();
    let mut stats = Vec::new();
    let mut wb_masks: Vec<(u32, u64)> = Vec::new();

    for &fi in &order {
        let f = &ir.funcs[fi];
        let start = code.len();
        func_addr.insert(f.name.clone(), start);
        let mut gen = FuncGen::new(f, ir, profile);
        gen.vuln = vuln.and_then(|v| v.func(&f.name));
        if verify {
            if let Err(e) = crate::verify::verify_allocation(f, &gen.alloc) {
                panic!("{}", e.after_pass("regalloc"));
            }
        }
        gen.run()?;
        for (at, callee) in gen.call_fixups {
            call_fixups.push((start + at, callee));
        }
        for (at, mask) in gen.wb_masks {
            wb_masks.push(((start + at) as u32, mask));
        }
        stats.push(FuncStats {
            name: f.name.clone(),
            code_words: gen.code.len(),
            spills: gen.alloc.spill_slots,
            frame_bytes: gen.frame_size,
        });
        code.extend(gen.code);
    }

    for (at, callee) in call_fixups {
        let target = *func_addr
            .get(&callee)
            .unwrap_or_else(|| panic!("call to unknown function `{callee}`"));
        let offset = target as i64 - at as i64;
        if !(-262144..262144).contains(&offset) {
            return Err(CompileError::new(
                Loc::default(),
                format!("call to `{callee}` out of jump range"),
            ));
        }
        let Instr::Jal { rd, .. } = code[at] else {
            panic!("call fixup does not point at a jal");
        };
        code[at] = Instr::Jal {
            rd,
            offset: offset as i32,
        };
    }

    if (code.len() * 4) as u64 > DATA_BASE - CODE_BASE {
        return Err(CompileError::new(
            Loc::default(),
            format!("code segment too large: {} instructions", code.len()),
        ));
    }

    // Build the data segment.
    let mut data = vec![0u8; ir.data_size as usize];
    for g in &ir.globals {
        for (i, &v) in g.init.iter().enumerate() {
            let off = (g.offset + i as u64 * g.elem_bytes) as usize;
            let bytes = v.to_le_bytes();
            data[off..off + g.elem_bytes as usize].copy_from_slice(&bytes[..g.elem_bytes as usize]);
        }
    }

    let program = Program {
        profile,
        code: code.into_iter().map(softerr_isa::encode).collect(),
        data,
        entry: CODE_BASE,
        mem_size: DEFAULT_MEM_SIZE,
        wb_masks,
    };
    Ok((program, stats))
}

/// Pending branch/jump fixup kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Fixup {
    /// Branch to an IR block.
    Block(BlockId),
    /// Jump to the function epilogue.
    Epilogue,
}

struct FuncGen<'a> {
    f: &'a IrFunc,
    ir: &'a IrModule,
    profile: Profile,
    alloc: Allocation,
    code: Vec<Instr>,
    fixups: Vec<(usize, Fixup)>,
    call_fixups: Vec<(usize, String)>,
    block_addr: Vec<Option<usize>>,
    slot_off: Vec<u64>,
    spill_base: u64,
    save_base: u64,
    ra_off: u64,
    frame_size: u64,
    is_main: bool,
    makes_calls: bool,
    /// Static bit-demand result for this function, when annotating.
    vuln: Option<&'a FuncVuln>,
    /// Collected `(local code index, demand mask)` writeback annotations.
    wb_masks: Vec<(usize, u64)>,
}

impl<'a> FuncGen<'a> {
    fn new(f: &'a IrFunc, ir: &'a IrModule, profile: Profile) -> FuncGen<'a> {
        let alloc = allocate(f, profile);
        let word = profile.word_bytes();

        // Frame layout: [slots][spills][saved callee regs][ra], 16-aligned.
        let mut off = 0u64;
        let mut slot_off = Vec::with_capacity(f.slots.len());
        for s in &f.slots {
            off = off.next_multiple_of(8);
            slot_off.push(off);
            off += s.size.max(word);
        }
        off = off.next_multiple_of(8);
        let spill_base = off;
        off += alloc.spill_slots as u64 * 8;
        let save_base = off;
        off += alloc.used_callee.len() as u64 * word;
        let ra_off = off;
        off += word;
        let frame_size = off.next_multiple_of(16);

        let makes_calls = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i, Inst::Call { .. }));

        FuncGen {
            is_main: f.name == "main",
            block_addr: vec![None; f.blocks.len()],
            f,
            ir,
            profile,
            alloc,
            code: Vec::new(),
            fixups: Vec::new(),
            call_fixups: Vec::new(),
            slot_off,
            spill_base,
            save_base,
            ra_off,
            frame_size,
            makes_calls,
            vuln: None,
            wb_masks: Vec::new(),
        }
    }

    fn word_width(&self) -> MemWidth {
        match self.profile {
            Profile::A32 => MemWidth::W,
            Profile::A64 => MemWidth::D,
        }
    }

    fn emit(&mut self, i: Instr) {
        self.code.push(i);
    }

    /// Emits an arbitrary constant into `rd` using 13-bit chunk
    /// materialization (1 instruction for small values, up to 9 for a full
    /// 64-bit constant).
    fn emit_const(&mut self, rd: Reg, v: i64) {
        if (-8192..8192).contains(&v) {
            self.emit(Instr::AluImm {
                op: AluOp::Add,
                rd,
                rs1: Reg::ZERO,
                imm: v as i32,
            });
            return;
        }
        let mut n = 1;
        while !(-8192..8192).contains(&(v >> (13 * (n - 1)))) {
            n += 1;
        }
        self.emit(Instr::AluImm {
            op: AluOp::Add,
            rd,
            rs1: Reg::ZERO,
            imm: (v >> (13 * (n - 1))) as i32,
        });
        for k in (0..n - 1).rev() {
            self.emit(Instr::AluImm {
                op: AluOp::Sll,
                rd,
                rs1: rd,
                imm: 13,
            });
            let chunk = ((v >> (13 * k)) & 0x1FFF) as i32;
            if chunk != 0 {
                self.emit(Instr::AluImm {
                    op: AluOp::Or,
                    rd,
                    rs1: rd,
                    imm: chunk,
                });
            }
        }
    }

    fn move_reg(&mut self, rd: Reg, rs: Reg) {
        if rd != rs {
            self.emit(Instr::AluImm {
                op: AluOp::Add,
                rd,
                rs1: rs,
                imm: 0,
            });
        }
    }

    /// Emits a load/store with an offset that may exceed the immediate range.
    fn mem_op(
        &mut self,
        load: Option<(Reg, bool)>,
        store: Option<Reg>,
        width: MemWidth,
        base: Reg,
        off: i64,
    ) {
        let (base, off) = if (-8192..8192).contains(&off) {
            (base, off as i32)
        } else {
            // Pick a scratch register that clobbers neither the base nor a
            // stored value. A stored value only ever sits in scratch1 while
            // the base is SP (slot accesses), so one of the two scratches is
            // always free.
            let tmp = if store == Some(scratch1()) || base == scratch1() {
                scratch0()
            } else {
                scratch1()
            };
            assert!(
                base != tmp && store != Some(tmp),
                "scratch conflict in mem_op"
            );
            self.emit_const(tmp, off);
            self.emit(Instr::Alu {
                op: AluOp::Add,
                rd: tmp,
                rs1: base,
                rs2: tmp,
            });
            (tmp, 0)
        };
        if let Some((rd, signed)) = load {
            self.emit(Instr::Load {
                width,
                signed,
                rd,
                base,
                offset: off,
            });
        }
        if let Some(src) = store {
            self.emit(Instr::Store {
                width,
                src,
                base,
                offset: off,
            });
        }
    }

    fn spill_addr(&self, idx: usize) -> i64 {
        (self.spill_base + idx as u64 * 8) as i64
    }

    /// Materializes the value of a vreg into a register (its home register,
    /// or `scratch` after a reload when spilled).
    fn read_vreg(&mut self, v: VReg, scratch: Reg) -> Reg {
        match self.alloc.locs.get(&v) {
            Some(RLoc::R(r)) => *r,
            Some(RLoc::Spill(idx)) => {
                let off = self.spill_addr(*idx);
                let w = self.word_width();
                self.mem_op(Some((scratch, true)), None, w, Reg::SP, off);
                scratch
            }
            // A vreg with no location is never used; reading it is a dead
            // path kept only for IR regularity.
            None => Reg::ZERO,
        }
    }

    /// Materializes an operand into a register.
    fn read_operand(&mut self, op: Operand, scratch: Reg) -> Reg {
        match op {
            Operand::V(v) => self.read_vreg(v, scratch),
            Operand::C(0) => Reg::ZERO,
            Operand::C(c) => {
                self.emit_const(scratch, c);
                scratch
            }
        }
    }

    /// Register to compute a def into (home register or scratch).
    fn def_reg(&mut self, v: VReg) -> Reg {
        match self.alloc.locs.get(&v) {
            Some(RLoc::R(r)) => *r,
            _ => scratch0(),
        }
    }

    /// Completes a def: stores scratch back to the spill slot if needed.
    fn finish_def(&mut self, v: VReg, computed_in: Reg) {
        if let Some(RLoc::Spill(idx)) = self.alloc.locs.get(&v).copied() {
            let off = self.spill_addr(idx);
            let w = self.word_width();
            self.mem_op(None, Some(computed_in), w, Reg::SP, off);
        }
    }

    fn run(&mut self) -> Result<(), CompileError> {
        self.prologue();
        for id in 0..self.f.blocks.len() {
            self.block_addr[id] = Some(self.code.len());
            let block = &self.f.blocks[id];
            for ii in 0..block.insts.len() {
                let inst = self.f.blocks[id].insts[ii].clone();
                let before = self.code.len();
                self.gen_inst(&inst);
                self.attribute_def(id, ii, before);
            }
            let term = self.f.blocks[id].term.clone();
            self.gen_term(&term, id);
        }
        self.epilogue();
        self.patch_fixups()?;
        Ok(())
    }

    fn prologue(&mut self) {
        let frame = self.frame_size as i64;
        if frame > 0 {
            if (-8192..8192).contains(&(-frame)) {
                self.emit(Instr::AluImm {
                    op: AluOp::Add,
                    rd: Reg::SP,
                    rs1: Reg::SP,
                    imm: -frame as i32,
                });
            } else {
                self.emit_const(scratch0(), frame);
                self.emit(Instr::Alu {
                    op: AluOp::Sub,
                    rd: Reg::SP,
                    rs1: Reg::SP,
                    rs2: scratch0(),
                });
            }
        }
        let w = self.word_width();
        if self.makes_calls {
            self.mem_op(None, Some(Reg::RA), w, Reg::SP, self.ra_off as i64);
        }
        let word = self.profile.word_bytes();
        for (k, r) in self.alloc.used_callee.clone().into_iter().enumerate() {
            let off = (self.save_base + k as u64 * word) as i64;
            self.mem_op(None, Some(r), w, Reg::SP, off);
        }
        // Move incoming arguments to their allocated homes.
        let args = self.profile.arg_regs();
        for (i, (v, _)) in self.f.params.clone().into_iter().enumerate() {
            let src = args[i];
            match self.alloc.locs.get(&v).copied() {
                Some(RLoc::R(r)) => {
                    let before = self.code.len();
                    self.move_reg(r, src);
                    // The home-register move is the parameter's writeback
                    // site; its entry demand bounds every later use.
                    if self.code.len() > before {
                        self.attribute_mask(
                            self.code.len() - 1,
                            r,
                            self.vuln
                                .and_then(|fv| fv.param_demand.iter().find(|&&(pv, _)| pv == v))
                                .map(|&(_, d)| d),
                        );
                    }
                }
                Some(RLoc::Spill(idx)) => {
                    let off = self.spill_addr(idx);
                    self.mem_op(None, Some(src), w, Reg::SP, off);
                }
                None => {}
            }
        }
    }

    /// Records a writeback demand mask for the instruction at `at` if it
    /// writes `home` and `demand` is a genuine (non-full) bound.
    fn attribute_mask(&mut self, at: usize, home: Reg, demand: Option<u64>) {
        let Some(demand) = demand else { return };
        if demand == full_mask(self.profile) {
            return;
        }
        if self.code[at].dest() == Some(home) {
            self.wb_masks.push((at, demand));
        }
    }

    /// After emitting the code for `(block, ii)`, attaches the def's static
    /// demand mask to the instruction performing its final home-register
    /// write. Spilled defs, no-op moves, and defs whose last emitted
    /// instruction does not write the home register (e.g. a call's link
    /// write) stay unattributed and default to a full mask.
    fn attribute_def(&mut self, block: BlockId, ii: usize, emitted_from: usize) {
        let Some(fv) = self.vuln else { return };
        let Some(dd) = fv.def_demand.get(&(block, ii)).copied() else {
            return;
        };
        if self.code.len() == emitted_from {
            return;
        }
        let Some(RLoc::R(home)) = self.alloc.locs.get(&dd.vreg).copied() else {
            return;
        };
        self.attribute_mask(self.code.len() - 1, home, Some(dd.demand));
    }

    fn epilogue(&mut self) {
        let at = self.code.len();
        // Resolve epilogue fixups to here.
        for (idx, fix) in std::mem::take(&mut self.fixups) {
            if fix == Fixup::Epilogue {
                self.patch_jump(idx, at);
            } else {
                self.fixups.push((idx, fix));
            }
        }
        if self.is_main {
            self.emit(Instr::Halt);
            return;
        }
        let w = self.word_width();
        let word = self.profile.word_bytes();
        for (k, r) in self.alloc.used_callee.clone().into_iter().enumerate() {
            let off = (self.save_base + k as u64 * word) as i64;
            self.mem_op(Some((r, true)), None, w, Reg::SP, off);
        }
        if self.makes_calls {
            self.mem_op(Some((Reg::RA, true)), None, w, Reg::SP, self.ra_off as i64);
        }
        let frame = self.frame_size as i64;
        if frame > 0 {
            if (-8192..8192).contains(&frame) {
                self.emit(Instr::AluImm {
                    op: AluOp::Add,
                    rd: Reg::SP,
                    rs1: Reg::SP,
                    imm: frame as i32,
                });
            } else {
                self.emit_const(scratch0(), frame);
                self.emit(Instr::Alu {
                    op: AluOp::Add,
                    rd: Reg::SP,
                    rs1: Reg::SP,
                    rs2: scratch0(),
                });
            }
        }
        self.emit(Instr::Jalr {
            rd: Reg::ZERO,
            base: Reg::RA,
            offset: 0,
        });
    }

    fn patch_jump(&mut self, at: usize, target: usize) {
        let offset = target as i64 - at as i64;
        match self.code[at] {
            Instr::Jal { rd, .. } => {
                assert!(
                    (-262144..262144).contains(&offset),
                    "jump offset out of range"
                );
                self.code[at] = Instr::Jal {
                    rd,
                    offset: offset as i32,
                };
            }
            Instr::Branch { cond, rs1, rs2, .. } => {
                assert!(
                    (-8192..8192).contains(&offset),
                    "branch offset out of range; function too large"
                );
                self.code[at] = Instr::Branch {
                    cond,
                    rs1,
                    rs2,
                    offset: offset as i32,
                };
            }
            other => panic!("fixup points at non-jump {other:?}"),
        }
    }

    fn patch_fixups(&mut self) -> Result<(), CompileError> {
        for (at, fix) in std::mem::take(&mut self.fixups) {
            match fix {
                Fixup::Block(b) => {
                    let target = self.block_addr[b].expect("block not emitted");
                    self.patch_jump(at, target);
                }
                Fixup::Epilogue => unreachable!("resolved in epilogue()"),
            }
        }
        Ok(())
    }

    fn jump_to_block(&mut self, b: BlockId) {
        self.fixups.push((self.code.len(), Fixup::Block(b)));
        self.emit(Instr::Jal {
            rd: Reg::ZERO,
            offset: 0,
        });
    }

    /// Truncates a register to 32 bits (A64 only; no-op width on A32).
    fn mask_u32(&mut self, r: Reg) {
        if self.profile == Profile::A64 {
            self.emit(Instr::AluImm {
                op: AluOp::Sll,
                rd: r,
                rs1: r,
                imm: 32,
            });
            self.emit(Instr::AluImm {
                op: AluOp::Srl,
                rd: r,
                rs1: r,
                imm: 32,
            });
        }
    }

    fn gen_inst(&mut self, inst: &Inst) {
        match inst {
            Inst::Bin { op, w, dst, a, b } => self.gen_bin(*op, *w, *dst, *a, *b),
            Inst::Cmp { cond, dst, a, b } => self.gen_cmp(*cond, *dst, *a, *b),
            Inst::Copy { dst, src } => {
                let rd = self.def_reg(*dst);
                match src {
                    Operand::C(c) => self.emit_const(rd, *c),
                    Operand::V(v) => {
                        let rs = self.read_vreg(*v, rd);
                        self.move_reg(rd, rs);
                    }
                }
                self.finish_def(*dst, rd);
            }
            Inst::Load { w, dst, addr, off } => {
                let base = self.read_operand(*addr, scratch0());
                let rd = self.def_reg(*dst);
                let (width, signed) = self.load_kind(*w);
                self.mem_op(Some((rd, signed)), None, width, base, *off);
                self.finish_def(*dst, rd);
            }
            Inst::Store { w, src, addr, off } => {
                let base = self.read_operand(*addr, scratch0());
                let val = self.read_operand(*src, scratch1());
                let (width, _) = self.load_kind(*w);
                self.mem_op(None, Some(val), width, base, *off);
            }
            Inst::SlotAddr { dst, slot } => {
                let rd = self.def_reg(*dst);
                let off = self.slot_off[*slot] as i64;
                if (-8192..8192).contains(&off) {
                    self.emit(Instr::AluImm {
                        op: AluOp::Add,
                        rd,
                        rs1: Reg::SP,
                        imm: off as i32,
                    });
                } else {
                    self.emit_const(rd, off);
                    self.emit(Instr::Alu {
                        op: AluOp::Add,
                        rd,
                        rs1: Reg::SP,
                        rs2: rd,
                    });
                }
                self.finish_def(*dst, rd);
            }
            Inst::GlobalAddr { dst, name } => {
                let g = self
                    .ir
                    .globals
                    .iter()
                    .find(|g| &g.name == name)
                    .unwrap_or_else(|| panic!("unknown global `{name}`"));
                let rd = self.def_reg(*dst);
                self.emit_const(rd, (DATA_BASE + g.offset) as i64);
                self.finish_def(*dst, rd);
            }
            Inst::LoadSlot { w, dst, slot } => {
                let rd = self.def_reg(*dst);
                let (width, signed) = self.load_kind(*w);
                let off = self.slot_off[*slot] as i64;
                self.mem_op(Some((rd, signed)), None, width, Reg::SP, off);
                self.finish_def(*dst, rd);
            }
            Inst::StoreSlot { w, slot, src } => {
                let val = self.read_operand(*src, scratch1());
                let (width, _) = self.load_kind(*w);
                let off = self.slot_off[*slot] as i64;
                self.mem_op(None, Some(val), width, Reg::SP, off);
            }
            Inst::Call { dst, callee, args } => {
                let arg_regs = self.profile.arg_regs();
                for (i, a) in args.iter().enumerate() {
                    let target = arg_regs[i];
                    match a {
                        Operand::C(c) => self.emit_const(target, *c),
                        Operand::V(v) => {
                            let rs = self.read_vreg(*v, target);
                            self.move_reg(target, rs);
                        }
                    }
                }
                self.call_fixups.push((self.code.len(), callee.clone()));
                self.emit(Instr::Jal {
                    rd: Reg::RA,
                    offset: 0,
                });
                if let Some(d) = dst {
                    let rd = self.def_reg(*d);
                    self.move_reg(rd, Reg::A0);
                    self.finish_def(*d, rd);
                }
            }
            Inst::Out { src } => {
                let rs = self.read_operand(*src, scratch0());
                self.emit(Instr::Out { rs1: rs });
            }
        }
    }

    fn load_kind(&self, w: Width) -> (MemWidth, bool) {
        match w {
            Width::U32 => (MemWidth::W, false),
            Width::Word => (self.word_width(), true),
        }
    }

    fn gen_bin(&mut self, op: BinOp, w: Width, dst: VReg, a: Operand, b: Operand) {
        // int → u32 masks lowered as `x & 0xFFFF_FFFF` compile to the 2-shift
        // idiom instead of a 5-instruction constant.
        if op == BinOp::And && b == Operand::C(0xFFFF_FFFF) {
            let ra = self.read_operand(a, scratch0());
            let rd = self.def_reg(dst);
            self.move_reg(rd, ra);
            self.mask_u32(rd);
            self.finish_def(dst, rd);
            return;
        }
        // Truncate constants in u32 operations so the zero-extension
        // invariant holds.
        let trunc = |o: Operand| match (w, o) {
            (Width::U32, Operand::C(c)) => Operand::C(c as u32 as i64),
            _ => o,
        };
        let a = trunc(a);
        let b = trunc(b);

        let (alu, commutes, imm_ok) = match op {
            BinOp::Add => (AluOp::Add, true, true),
            BinOp::Sub => (AluOp::Sub, false, false),
            BinOp::Mul => (AluOp::Mul, true, false),
            BinOp::Div { signed } => (if signed { AluOp::Div } else { AluOp::Divu }, false, false),
            BinOp::Rem { signed } => (if signed { AluOp::Rem } else { AluOp::Remu }, false, false),
            BinOp::And => (AluOp::And, true, true),
            BinOp::Or => (AluOp::Or, true, true),
            BinOp::Xor => (AluOp::Xor, true, true),
            BinOp::Shl => (AluOp::Sll, false, true),
            BinOp::Shr { arith } => (if arith { AluOp::Sra } else { AluOp::Srl }, false, true),
        };

        let rd = self.def_reg(dst);
        // a - const → addi with negated immediate.
        if op == BinOp::Sub {
            if let Operand::C(c) = b {
                if (-8191..=8192).contains(&c) {
                    let ra = self.read_operand(a, scratch0());
                    self.emit(Instr::AluImm {
                        op: AluOp::Add,
                        rd,
                        rs1: ra,
                        imm: -c as i32,
                    });
                    self.maybe_mask(w, op, rd);
                    self.finish_def(dst, rd);
                    return;
                }
            }
        }
        let (a, b) = if commutes && a.as_const().is_some() && b.as_const().is_none() {
            (b, a)
        } else {
            (a, b)
        };
        match b {
            Operand::C(c) if imm_ok && (-8192..8192).contains(&c) => {
                let ra = self.read_operand(a, scratch0());
                self.emit(Instr::AluImm {
                    op: alu,
                    rd,
                    rs1: ra,
                    imm: c as i32,
                });
            }
            _ => {
                let ra = self.read_operand(a, scratch0());
                let rb = self.read_operand(b, scratch1());
                self.emit(Instr::Alu {
                    op: alu,
                    rd,
                    rs1: ra,
                    rs2: rb,
                });
            }
        }
        self.maybe_mask(w, op, rd);
        self.finish_def(dst, rd);
    }

    /// Re-establishes the u32 zero-extension invariant after operations that
    /// can carry into bit 32 (A64 only).
    fn maybe_mask(&mut self, w: Width, op: BinOp, rd: Reg) {
        if w == Width::U32 && matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Shl) {
            self.mask_u32(rd);
        }
    }

    fn gen_cmp(&mut self, cond: Cond, dst: VReg, a: Operand, b: Operand) {
        let rd = self.def_reg(dst);
        // Normalize Gt/Le (and unsigned forms) to Lt by swapping operands.
        let (cond, a, b) = match cond {
            Cond::Gt => (Cond::Lt, b, a),
            Cond::Le => (Cond::Ge, b, a),
            Cond::Gtu => (Cond::Ltu, b, a),
            Cond::Leu => (Cond::Geu, b, a),
            c => (c, a, b),
        };
        match cond {
            Cond::Lt | Cond::Ltu => {
                let slt = if cond == Cond::Lt {
                    AluOp::Slt
                } else {
                    AluOp::Sltu
                };
                match b {
                    Operand::C(c) if (-8192..8192).contains(&c) => {
                        let ra = self.read_operand(a, scratch0());
                        self.emit(Instr::AluImm {
                            op: slt,
                            rd,
                            rs1: ra,
                            imm: c as i32,
                        });
                    }
                    _ => {
                        let ra = self.read_operand(a, scratch0());
                        let rb = self.read_operand(b, scratch1());
                        self.emit(Instr::Alu {
                            op: slt,
                            rd,
                            rs1: ra,
                            rs2: rb,
                        });
                    }
                }
            }
            Cond::Ge | Cond::Geu => {
                // a >= b  ⇔  !(a < b)
                self.gen_cmp(
                    if cond == Cond::Ge {
                        Cond::Lt
                    } else {
                        Cond::Ltu
                    },
                    dst,
                    a,
                    b,
                );
                let rd2 = self.def_reg(dst);
                let rs = self.read_vreg(dst, rd2);
                self.emit(Instr::AluImm {
                    op: AluOp::Xor,
                    rd: rd2,
                    rs1: rs,
                    imm: 1,
                });
            }
            Cond::Eq | Cond::Ne => {
                let ra = self.read_operand(a, scratch0());
                let diff = match b {
                    Operand::C(0) => ra,
                    Operand::C(c) if (-8191..=8192).contains(&c) => {
                        self.emit(Instr::AluImm {
                            op: AluOp::Add,
                            rd,
                            rs1: ra,
                            imm: -(c as i32),
                        });
                        rd
                    }
                    _ => {
                        let rb = self.read_operand(b, scratch1());
                        self.emit(Instr::Alu {
                            op: AluOp::Xor,
                            rd,
                            rs1: ra,
                            rs2: rb,
                        });
                        rd
                    }
                };
                if cond == Cond::Eq {
                    // diff == 0  ⇔  diff <u 1
                    self.emit(Instr::AluImm {
                        op: AluOp::Sltu,
                        rd,
                        rs1: diff,
                        imm: 1,
                    });
                } else {
                    // diff != 0  ⇔  0 <u diff
                    self.emit(Instr::Alu {
                        op: AluOp::Sltu,
                        rd,
                        rs1: Reg::ZERO,
                        rs2: diff,
                    });
                }
            }
            Cond::Gt | Cond::Le | Cond::Gtu | Cond::Leu => unreachable!("normalized above"),
        }
        self.finish_def(dst, rd);
    }

    fn gen_term(&mut self, term: &Term, cur_block: BlockId) {
        match term {
            Term::Ret(op) => {
                if let Some(op) = op {
                    match op {
                        Operand::C(c) => self.emit_const(Reg::A0, *c),
                        Operand::V(v) => {
                            let rs = self.read_vreg(*v, Reg::A0);
                            self.move_reg(Reg::A0, rs);
                        }
                    }
                }
                self.fixups.push((self.code.len(), Fixup::Epilogue));
                self.emit(Instr::Jal {
                    rd: Reg::ZERO,
                    offset: 0,
                });
            }
            Term::Jmp(b) => {
                // Blocks are emitted in index order, so a jump to the next
                // block is a fallthrough.
                if *b != cur_block + 1 {
                    self.jump_to_block(*b);
                }
            }
            Term::CondBr { cond, a, b, t, f } => {
                // Map to a native branch condition, swapping operands for
                // Gt/Le forms.
                let (bc, a, b) = match cond {
                    Cond::Eq => (BranchCond::Eq, *a, *b),
                    Cond::Ne => (BranchCond::Ne, *a, *b),
                    Cond::Lt => (BranchCond::Lt, *a, *b),
                    Cond::Ge => (BranchCond::Ge, *a, *b),
                    Cond::Ltu => (BranchCond::Ltu, *a, *b),
                    Cond::Geu => (BranchCond::Geu, *a, *b),
                    Cond::Gt => (BranchCond::Lt, *b, *a),
                    Cond::Le => (BranchCond::Ge, *b, *a),
                    Cond::Gtu => (BranchCond::Ltu, *b, *a),
                    Cond::Leu => (BranchCond::Geu, *b, *a),
                };
                let ra = self.read_operand(a, scratch0());
                let rb = self.read_operand(b, scratch1());
                self.fixups.push((self.code.len(), Fixup::Block(*t)));
                self.emit(Instr::Branch {
                    cond: bc,
                    rs1: ra,
                    rs2: rb,
                    offset: 0,
                });
                if *f != cur_block + 1 {
                    self.jump_to_block(*f);
                }
            }
        }
    }
}
