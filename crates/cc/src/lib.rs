//! # softerr-cc
//!
//! An optimizing compiler for **MiniC** — the C subset the study's
//! workloads are written in — targeting the `softerr-isa` load/store RISC
//! machine. The compiler's four optimization levels (`O0`–`O3`) reproduce
//! the pass families GCC enables at the corresponding `-O` flags, which is
//! the independent variable of the soft-error characterization study:
//!
//! * **O0** — naive stack code: every variable lives in memory.
//! * **O1** — `mem2reg`, constant folding, copy propagation, DCE, CFG
//!   simplification, linear-scan register allocation.
//! * **O2** — O1 plus CSE, loop-invariant code motion, strength reduction,
//!   cross-jumping, and list scheduling.
//! * **O3** — O2 plus function inlining and loop unrolling.
//!
//! ```
//! use softerr_cc::{Compiler, OptLevel};
//! use softerr_isa::{Emulator, Profile};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let source = "void main() { int s = 0; for (int i = 1; i <= 10; i = i + 1) s = s + i; out(s); }";
//! let compiled = Compiler::new(Profile::A64, OptLevel::O2).compile(source)?;
//! let mut emu = Emulator::new(&compiled.program);
//! assert_eq!(emu.run(100_000)?.output, vec![55]);
//! # Ok(())
//! # }
//! ```
#![warn(missing_docs)]

pub mod analysis;
pub mod ast;
pub mod codegen;
pub mod error;
pub mod ir;
pub mod lexer;
pub mod lower;
pub mod opt;
pub mod parser;
pub mod passes;
pub mod regalloc;
pub mod verify;

pub use analysis::{DeadSite, DefDemand, FuncVuln, StaticVulnMap};
pub use error::CompileError;
pub use opt::{OptLevel, PassConfig};
pub use verify::VerifyError;

use softerr_isa::{Profile, Program};

/// Compilation statistics, used by the study's code-size comparisons.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileStats {
    /// Total machine instructions emitted.
    pub code_words: usize,
    /// Data segment size in bytes.
    pub data_bytes: usize,
    /// Per-function statistics.
    pub funcs: Vec<codegen::FuncStats>,
    /// IR instruction count after optimization.
    pub ir_insts: usize,
}

/// A compiled MiniC program with its statistics.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// Loadable program image.
    pub program: Program,
    /// Compilation statistics.
    pub stats: CompileStats,
    /// Static bit-level vulnerability map of the optimized IR (see
    /// [`analysis`]); its def masks are also carried onto the program as
    /// `Program::wb_masks`.
    pub vuln: StaticVulnMap,
}

/// The MiniC compiler, configured with a target profile and an optimization
/// level (or a custom pass configuration for ablation studies).
#[derive(Debug, Clone, Copy)]
pub struct Compiler {
    profile: Profile,
    passes: PassConfig,
    level: OptLevel,
    verify: bool,
}

impl Compiler {
    /// Creates a compiler for `profile` at the given optimization level.
    pub fn new(profile: Profile, level: OptLevel) -> Compiler {
        Compiler {
            profile,
            passes: PassConfig::for_level(level),
            level,
            verify: opt::verify_default(),
        }
    }

    /// Creates a compiler with an explicit pass configuration (ablations).
    pub fn with_passes(profile: Profile, passes: PassConfig) -> Compiler {
        Compiler {
            profile,
            passes,
            level: OptLevel::O2,
            verify: opt::verify_default(),
        }
    }

    /// Overrides IR verification: when on, the IR is re-verified after
    /// every optimization pass and the register allocation is checked
    /// after codegen (see [`verify`]). Defaults to
    /// [`opt::verify_default`] — on in tests and under the `verify-ir`
    /// feature, off otherwise.
    #[must_use]
    pub fn with_verify(mut self, verify: bool) -> Compiler {
        self.verify = verify;
        self
    }

    /// The target profile.
    pub fn profile(&self) -> Profile {
        self.profile
    }

    /// The configured optimization level.
    pub fn level(&self) -> OptLevel {
        self.level
    }

    /// Compiles MiniC source to a loadable program.
    ///
    /// # Errors
    ///
    /// Returns the first lexical, syntactic, or semantic error, or a
    /// code-generation limit violation (oversized functions).
    ///
    /// # Panics
    ///
    /// When verification is enabled and a pass (or the register allocator)
    /// breaks an IR invariant — a miscompile is a compiler bug, not a
    /// recoverable user error, and the panic message names the offending
    /// pass, function, block, and instruction.
    pub fn compile(&self, source: &str) -> Result<Compiled, CompileError> {
        let mut sp = softerr_telemetry::span("cc.compile");
        sp.record("level", self.level.to_string());
        let ast = parser::parse(source)?;
        let mut ir = lower::lower(&ast, self.profile)?;
        if let Err(e) = opt::run_pipeline_checked(&mut ir, self.passes, self.profile, self.verify) {
            panic!("{e}");
        }
        let ir_insts = ir.funcs.iter().map(|f| f.inst_count()).sum();
        let vuln = StaticVulnMap::analyze(&ir, self.profile);
        // Dead computations surviving the O2/O3 pipelines mean a pass left
        // work on the table: surface them as lint warnings (`cc.lint`).
        if self.level >= OptLevel::O2 {
            self.lint_dead(&ir, &vuln);
        }
        let (program, funcs) =
            codegen::generate_annotated(&ir, self.profile, self.verify, Some(&vuln))?;
        let stats = CompileStats {
            code_words: program.code.len(),
            data_bytes: program.data.len(),
            funcs,
            ir_insts,
        };
        sp.record("code_words", stats.code_words as u64);
        Ok(Compiled {
            program,
            stats,
            vuln,
        })
    }

    /// Emits one `cc.lint` warning per fully-dead def or store the static
    /// analysis found in the optimized IR.
    fn lint_dead(&self, ir: &ir::IrModule, vuln: &StaticVulnMap) {
        use softerr_telemetry::{event, Level};
        for (f, fv) in ir.funcs.iter().zip(&vuln.funcs) {
            for site in &fv.dead {
                match *site {
                    DeadSite::Def { block, inst, vreg } => event!(
                        Level::Warn,
                        "cc.lint",
                        { func: f.name.clone(), block: block as u64, inst: inst as u64 },
                        "dead computation survives {}: v{} in {}.b{}[{}] has no live bits",
                        self.level,
                        vreg,
                        f.name,
                        block,
                        inst
                    ),
                    DeadSite::Store { block, inst, slot } => event!(
                        Level::Warn,
                        "cc.lint",
                        { func: f.name.clone(), block: block as u64, inst: inst as u64 },
                        "dead store survives {}: `{}` in {}.b{}[{}] is never reloaded",
                        self.level,
                        f.slots[slot].name,
                        f.name,
                        block,
                        inst
                    ),
                }
            }
        }
    }

    /// Compiles and returns the optimized IR (for inspection and tests).
    ///
    /// # Errors
    ///
    /// Same as [`Compiler::compile`].
    pub fn compile_to_ir(&self, source: &str) -> Result<ir::IrModule, CompileError> {
        let ast = parser::parse(source)?;
        let mut ir = lower::lower(&ast, self.profile)?;
        if let Err(e) = opt::run_pipeline_checked(&mut ir, self.passes, self.profile, self.verify) {
            panic!("{e}");
        }
        Ok(ir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softerr_isa::Emulator;

    fn run_level(src: &str, profile: Profile, level: OptLevel) -> Vec<u64> {
        let compiled = Compiler::new(profile, level).compile(src).expect("compile");
        let mut emu = Emulator::new(&compiled.program);
        let out = emu.run(100_000_000).expect("trap");
        assert!(out.completed, "did not halt at {level}");
        out.output
    }

    /// Differential check: all four levels on both profiles agree.
    fn check_all_levels(src: &str, expect: &[u64]) {
        for profile in [Profile::A32, Profile::A64] {
            for level in OptLevel::ALL {
                let out = run_level(src, profile, level);
                assert_eq!(out, expect, "{profile}/{level} diverged");
            }
        }
    }

    #[test]
    fn fibonacci_recursive() {
        check_all_levels(
            "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
             void main() { out(fib(12)); }",
            &[144],
        );
    }

    #[test]
    fn array_sum_and_pointers() {
        check_all_levels(
            "void fill(int *p, int n) { for (int i = 0; i < n; i = i + 1) p[i] = i * 3; }
             int sum(int *p, int n) { int s = 0; for (int i = 0; i < n; i = i + 1) s = s + p[i]; return s; }
             void main() { int a[20]; fill(&a[0], 20); out(sum(&a[0], 20)); }",
            &[570],
        );
    }

    #[test]
    fn u32_crypto_style_mixing() {
        let mut h: u32 = 0x6745_2301;
        for _ in 0..16 {
            h = h.rotate_left(5).wrapping_add(0x9E37_79B9);
            h ^= h >> 13;
        }
        check_all_levels(
            "void main() {
                u32 h = 0x67452301;
                u32 golden = 0x9E3779B9;
                for (int i = 0; i < 16; i = i + 1) {
                    h = ((h << 5) | (h >> 27)) + golden;
                    h = h ^ (h >> 13);
                }
                out(h);
             }",
            &[h as u64],
        );
    }

    #[test]
    fn global_tables() {
        check_all_levels(
            "int tab[5] = {10, 20, 30, 40, 50};
             int idx = 3;
             void main() { out(tab[idx]); tab[1] = 99; out(tab[1] + tab[0]); }",
            &[40, 109],
        );
    }

    #[test]
    fn division_and_modulo_signs() {
        // Results are word-width dependent: on A32, -3 prints as the 32-bit
        // pattern. Compare per profile against the reference emulator by
        // checking cross-level agreement only.
        for profile in [Profile::A32, Profile::A64] {
            let src = "void main() {
                out(-7 / 2);  out(-7 % 2);
                out(7 / -2);  out(7 % -2);
                out(7 / 0);   out(7 % 0);
             }";
            let golden = run_level(src, profile, OptLevel::O0);
            for level in OptLevel::ALL {
                assert_eq!(run_level(src, profile, level), golden, "{profile}/{level}");
            }
            // Signed semantics sanity on the A64 profile.
            if profile == Profile::A64 {
                assert_eq!(
                    golden,
                    vec![(-3i64) as u64, (-1i64) as u64, (-3i64) as u64, 1, 0, 7]
                );
            }
        }
    }

    #[test]
    fn o0_code_is_larger_and_slower_shaped() {
        let src = "
            int work(int n) { int s = 0; for (int i = 0; i < n; i = i + 1) s = s + i * i; return s; }
            void main() { out(work(50)); }";
        let o0 = Compiler::new(Profile::A64, OptLevel::O0)
            .compile(src)
            .unwrap();
        let o2 = Compiler::new(Profile::A64, OptLevel::O2)
            .compile(src)
            .unwrap();
        assert!(
            o0.stats.code_words > o2.stats.code_words,
            "O0 ({}) should out-size O2 ({})",
            o0.stats.code_words,
            o2.stats.code_words
        );
        // Dynamic instruction counts via the emulator.
        let retired = |p: &Program| {
            let mut e = Emulator::new(p);
            e.run(10_000_000).unwrap().retired
        };
        assert!(retired(&o0.program) > retired(&o2.program));
    }

    #[test]
    fn o3_unrolling_grows_loop_heavy_code() {
        // No inlinable calls, so O3 − O2 is pure loop unrolling: larger code.
        let src = "
            void main() {
                int s = 0;
                for (int i = 0; i < 20; i = i + 1) {
                    s = s + i * 7;
                    s = s ^ (i << 3);
                    s = s - (i >> 1);
                }
                out(s);
            }";
        let o2 = Compiler::new(Profile::A64, OptLevel::O2)
            .compile(src)
            .unwrap();
        let o3 = Compiler::new(Profile::A64, OptLevel::O3)
            .compile(src)
            .unwrap();
        assert!(
            o3.stats.code_words > o2.stats.code_words,
            "O3 ({}) should out-size O2 ({}) on a loop-only program",
            o3.stats.code_words,
            o2.stats.code_words
        );
        let run = |p: &Program| Emulator::new(p).run(10_000_000).unwrap().output;
        assert_eq!(run(&o2.program), run(&o3.program));
    }

    #[test]
    fn compile_errors_surface() {
        let c = Compiler::new(Profile::A64, OptLevel::O2);
        assert!(c.compile("void main() {").is_err());
        assert!(c.compile("void main() { undefined(); }").is_err());
        assert!(c.compile("int x;").is_err()); // no main
    }

    #[test]
    fn ablation_configs_compile_and_agree() {
        let src = "
            int f(int x) { return x * 8 + x * 8; }
            void main() { for (int i = 0; i < 5; i = i + 1) out(f(i)); }";
        let golden = run_level(src, Profile::A64, OptLevel::O2);
        for pass in ["cse", "licm", "schedule", "strength-reduce"] {
            let cfg = PassConfig::for_level(OptLevel::O2).without(pass);
            let compiled = Compiler::with_passes(Profile::A64, cfg)
                .compile(src)
                .unwrap();
            let mut emu = Emulator::new(&compiled.program);
            assert_eq!(
                emu.run(10_000_000).unwrap().output,
                golden,
                "ablation without {pass} diverged"
            );
        }
    }
}
