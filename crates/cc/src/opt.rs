//! Optimization levels and the pass pipelines they enable.
//!
//! The level → pass mapping mirrors the families GCC's documentation (and
//! the paper's §II.A) attributes to each `-O` level:
//!
//! | Level | Passes |
//! |-------|--------|
//! | O0 | none — naive stack code straight from lowering |
//! | O1 | mem2reg, constant folding, copy propagation, dead-code elimination, CFG simplification |
//! | O2 | O1 + common-subexpression elimination, loop-invariant code motion, strength reduction, cross-jumping, instruction scheduling |
//! | O3 | O2 + function inlining and loop unrolling (larger code, same semantics) |

use crate::ir::IrModule;
use crate::passes;
use serde::{Deserialize, Serialize};
use softerr_isa::Profile;
use std::fmt;
use std::str::FromStr;

/// A GCC-style optimization level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OptLevel {
    /// No optimization: every local lives on the stack.
    O0,
    /// Basic scalar optimizations and register promotion.
    O1,
    /// O1 plus CSE, LICM, strength reduction, scheduling, cross-jumping.
    O2,
    /// O2 plus inlining and loop unrolling.
    O3,
}

impl OptLevel {
    /// All levels, lowest first.
    pub const ALL: [OptLevel; 4] = [OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3];
}

impl fmt::Display for OptLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptLevel::O0 => write!(f, "O0"),
            OptLevel::O1 => write!(f, "O1"),
            OptLevel::O2 => write!(f, "O2"),
            OptLevel::O3 => write!(f, "O3"),
        }
    }
}

impl FromStr for OptLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<OptLevel, String> {
        match s.trim_start_matches('-') {
            "O0" | "o0" | "0" => Ok(OptLevel::O0),
            "O1" | "o1" | "1" => Ok(OptLevel::O1),
            "O2" | "o2" | "2" => Ok(OptLevel::O2),
            "O3" | "o3" | "3" => Ok(OptLevel::O3),
            other => Err(format!("unknown optimization level `{other}`")),
        }
    }
}

/// Fine-grained pass toggles, used both to build the standard levels and for
/// the per-optimization ablation experiments (the paper's stated future
/// work).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassConfig {
    /// Promote non-address-taken stack slots to registers.
    pub mem2reg: bool,
    /// Constant folding and propagation.
    pub const_fold: bool,
    /// Copy propagation.
    pub copy_prop: bool,
    /// Dead-code elimination.
    pub dce: bool,
    /// Branch folding, jump threading, block merging, unreachable-block removal.
    pub simplify_cfg: bool,
    /// Local + extended common-subexpression elimination.
    pub cse: bool,
    /// Loop-invariant code motion.
    pub licm: bool,
    /// Strength reduction (multiplications by constants → shifts/adds).
    pub strength_reduce: bool,
    /// Cross-jumping (tail merging of identical blocks).
    pub cross_jump: bool,
    /// List scheduling within basic blocks.
    pub schedule: bool,
    /// Function inlining.
    pub inline: bool,
    /// Loop unrolling (body replication).
    pub unroll: bool,
}

impl PassConfig {
    /// The pass set enabled by a standard level.
    pub fn for_level(level: OptLevel) -> PassConfig {
        let o1 = level >= OptLevel::O1;
        let o2 = level >= OptLevel::O2;
        let o3 = level >= OptLevel::O3;
        PassConfig {
            mem2reg: o1,
            const_fold: o1,
            copy_prop: o1,
            dce: o1,
            simplify_cfg: o1,
            cse: o2,
            licm: o2,
            strength_reduce: o2,
            cross_jump: o2,
            schedule: o2,
            inline: o3,
            unroll: o3,
        }
    }

    /// Disables one named pass (for ablation studies).
    ///
    /// Recognized names: `mem2reg`, `const-fold`, `copy-prop`, `dce`,
    /// `simplify-cfg`, `cse`, `licm`, `strength-reduce`, `cross-jump`,
    /// `schedule`, `inline`, `unroll`.
    pub fn without(mut self, pass: &str) -> PassConfig {
        match pass {
            "mem2reg" => self.mem2reg = false,
            "const-fold" => self.const_fold = false,
            "copy-prop" => self.copy_prop = false,
            "dce" => self.dce = false,
            "simplify-cfg" => self.simplify_cfg = false,
            "cse" => self.cse = false,
            "licm" => self.licm = false,
            "strength-reduce" => self.strength_reduce = false,
            "cross-jump" => self.cross_jump = false,
            "schedule" => self.schedule = false,
            "inline" => self.inline = false,
            "unroll" => self.unroll = false,
            other => panic!("unknown pass name `{other}`"),
        }
        self
    }
}

/// Runs the configured pass pipeline over a module in place.
///
/// Pass order follows GCC's broad staging: inlining first (so every later
/// pass sees merged bodies), the scalar/loop pipeline next, and loop
/// unrolling *late* (unrolling duplicates definitions, which would defeat
/// the single-definition reasoning in LICM if run earlier), with scheduling
/// last over the final block shapes.
pub fn run_pipeline(ir: &mut IrModule, cfg: PassConfig, profile: Profile) {
    fn scalar_fixpoint(f: &mut crate::ir::IrFunc, cfg: PassConfig, profile: Profile) {
        for _ in 0..4 {
            let mut changed = false;
            if cfg.const_fold {
                changed |= passes::const_fold::run(f, profile);
            }
            if cfg.copy_prop {
                changed |= passes::copy_prop::run(f);
            }
            if cfg.cse {
                changed |= passes::cse::run(f);
            }
            if cfg.dce {
                changed |= passes::dce::run(f);
            }
            if cfg.simplify_cfg {
                changed |= passes::simplify_cfg::run(f);
            }
            if !changed {
                break;
            }
        }
    }

    if cfg.inline {
        passes::inline::run(ir);
    }
    for f in &mut ir.funcs {
        if cfg.mem2reg {
            passes::mem2reg::run(f);
        }
        scalar_fixpoint(f, cfg, profile);
        if cfg.licm {
            passes::licm::run(f);
        }
        if cfg.strength_reduce {
            passes::strength_reduce::run(f);
            if cfg.dce {
                passes::dce::run(f);
            }
        }
        if cfg.cross_jump {
            passes::cross_jump::run(f);
        }
    }
    // Unrolling runs late (it duplicates definitions, which would defeat
    // LICM's single-definition reasoning if run earlier), followed by a
    // second scalar round that merges the duplicated exit tests.
    if cfg.unroll {
        passes::unroll::run(ir);
        for f in &mut ir.funcs {
            scalar_fixpoint(f, cfg, profile);
        }
    }
    for f in &mut ir.funcs {
        if cfg.schedule {
            passes::schedule::run(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered() {
        assert!(OptLevel::O0 < OptLevel::O1);
        assert!(OptLevel::O2 < OptLevel::O3);
    }

    #[test]
    fn parse_roundtrip() {
        for l in OptLevel::ALL {
            assert_eq!(l.to_string().parse::<OptLevel>().unwrap(), l);
        }
        assert_eq!("-O2".parse::<OptLevel>().unwrap(), OptLevel::O2);
        assert!("O9".parse::<OptLevel>().is_err());
    }

    #[test]
    fn o0_enables_nothing() {
        let c = PassConfig::for_level(OptLevel::O0);
        assert!(!c.mem2reg && !c.cse && !c.inline);
    }

    #[test]
    fn levels_are_cumulative() {
        let o1 = PassConfig::for_level(OptLevel::O1);
        let o2 = PassConfig::for_level(OptLevel::O2);
        let o3 = PassConfig::for_level(OptLevel::O3);
        assert!(o1.mem2reg && !o1.cse);
        assert!(o2.mem2reg && o2.cse && !o2.inline);
        assert!(o3.cse && o3.inline && o3.unroll);
    }

    #[test]
    fn without_disables_single_pass() {
        let c = PassConfig::for_level(OptLevel::O2).without("cse");
        assert!(!c.cse && c.licm);
    }
}
