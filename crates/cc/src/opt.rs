//! Optimization levels and the pass pipelines they enable.
//!
//! The level → pass mapping mirrors the families GCC's documentation (and
//! the paper's §II.A) attributes to each `-O` level:
//!
//! | Level | Passes |
//! |-------|--------|
//! | O0 | none — naive stack code straight from lowering |
//! | O1 | mem2reg, constant folding, copy propagation, dead-code elimination, CFG simplification |
//! | O2 | O1 + common-subexpression elimination, loop-invariant code motion, strength reduction, cross-jumping, instruction scheduling |
//! | O3 | O2 + function inlining and loop unrolling (larger code, same semantics) |

use crate::ir::IrModule;
use crate::passes;
use crate::verify::{self, VerifyError};
use serde::{Deserialize, Serialize};
use softerr_isa::Profile;
use std::fmt;
use std::str::FromStr;

/// A GCC-style optimization level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OptLevel {
    /// No optimization: every local lives on the stack.
    O0,
    /// Basic scalar optimizations and register promotion.
    O1,
    /// O1 plus CSE, LICM, strength reduction, scheduling, cross-jumping.
    O2,
    /// O2 plus inlining and loop unrolling.
    O3,
}

impl OptLevel {
    /// All levels, lowest first.
    pub const ALL: [OptLevel; 4] = [OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3];
}

impl fmt::Display for OptLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptLevel::O0 => write!(f, "O0"),
            OptLevel::O1 => write!(f, "O1"),
            OptLevel::O2 => write!(f, "O2"),
            OptLevel::O3 => write!(f, "O3"),
        }
    }
}

impl FromStr for OptLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<OptLevel, String> {
        match s.trim_start_matches('-') {
            "O0" | "o0" | "0" => Ok(OptLevel::O0),
            "O1" | "o1" | "1" => Ok(OptLevel::O1),
            "O2" | "o2" | "2" => Ok(OptLevel::O2),
            "O3" | "o3" | "3" => Ok(OptLevel::O3),
            other => Err(format!("unknown optimization level `{other}`")),
        }
    }
}

/// Fine-grained pass toggles, used both to build the standard levels and for
/// the per-optimization ablation experiments (the paper's stated future
/// work).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassConfig {
    /// Promote non-address-taken stack slots to registers.
    pub mem2reg: bool,
    /// Constant folding and propagation.
    pub const_fold: bool,
    /// Copy propagation.
    pub copy_prop: bool,
    /// Dead-code elimination.
    pub dce: bool,
    /// Branch folding, jump threading, block merging, unreachable-block removal.
    pub simplify_cfg: bool,
    /// Local + extended common-subexpression elimination.
    pub cse: bool,
    /// Loop-invariant code motion.
    pub licm: bool,
    /// Strength reduction (multiplications by constants → shifts/adds).
    pub strength_reduce: bool,
    /// Cross-jumping (tail merging of identical blocks).
    pub cross_jump: bool,
    /// List scheduling within basic blocks.
    pub schedule: bool,
    /// Function inlining.
    pub inline: bool,
    /// Loop unrolling (body replication).
    pub unroll: bool,
}

impl PassConfig {
    /// The pass set enabled by a standard level.
    pub fn for_level(level: OptLevel) -> PassConfig {
        let o1 = level >= OptLevel::O1;
        let o2 = level >= OptLevel::O2;
        let o3 = level >= OptLevel::O3;
        PassConfig {
            mem2reg: o1,
            const_fold: o1,
            copy_prop: o1,
            dce: o1,
            simplify_cfg: o1,
            cse: o2,
            licm: o2,
            strength_reduce: o2,
            cross_jump: o2,
            schedule: o2,
            inline: o3,
            unroll: o3,
        }
    }

    /// Disables one named pass (for ablation studies).
    ///
    /// Recognized names: `mem2reg`, `const-fold`, `copy-prop`, `dce`,
    /// `simplify-cfg`, `cse`, `licm`, `strength-reduce`, `cross-jump`,
    /// `schedule`, `inline`, `unroll`.
    pub fn without(mut self, pass: &str) -> PassConfig {
        match pass {
            "mem2reg" => self.mem2reg = false,
            "const-fold" => self.const_fold = false,
            "copy-prop" => self.copy_prop = false,
            "dce" => self.dce = false,
            "simplify-cfg" => self.simplify_cfg = false,
            "cse" => self.cse = false,
            "licm" => self.licm = false,
            "strength-reduce" => self.strength_reduce = false,
            "cross-jump" => self.cross_jump = false,
            "schedule" => self.schedule = false,
            "inline" => self.inline = false,
            "unroll" => self.unroll = false,
            other => panic!("unknown pass name `{other}`"),
        }
        self
    }
}

/// Whether pipelines verify the IR after every pass by default: always in
/// test builds, and in any build with the `verify-ir` cargo feature on
/// (which CI enables for the workload sweep).
pub fn verify_default() -> bool {
    cfg!(any(test, feature = "verify-ir"))
}

/// The verifying pass driver: every pass application goes through
/// [`Pipeline::func_pass`] / [`Pipeline::module_pass`], which re-verify the
/// produced IR when `verify` is on and attach the offending pass name to
/// any failure.
struct Pipeline {
    cfg: PassConfig,
    profile: Profile,
    verify: bool,
}

impl Pipeline {
    /// Runs a per-function pass over one function and verifies that
    /// function afterwards.
    fn func_pass(
        &self,
        name: &str,
        ir: &mut IrModule,
        fi: usize,
        run: impl FnOnce(&mut crate::ir::IrFunc) -> bool,
    ) -> Result<bool, VerifyError> {
        let mut sp = softerr_telemetry::span("cc.pass");
        sp.record("pass", name.to_string());
        let changed = run(&mut ir.funcs[fi]);
        sp.record("changed", changed);
        if self.verify {
            verify::verify_func(&ir.funcs[fi]).map_err(|e| e.after_pass(name))?;
        }
        Ok(changed)
    }

    /// Runs a whole-module pass and verifies the whole module afterwards
    /// (module passes can change call signatures and function sets, so the
    /// cross-function checks re-run too).
    fn module_pass(
        &self,
        name: &str,
        ir: &mut IrModule,
        run: impl FnOnce(&mut IrModule) -> bool,
    ) -> Result<bool, VerifyError> {
        let mut sp = softerr_telemetry::span("cc.pass");
        sp.record("pass", name.to_string());
        let changed = run(ir);
        sp.record("changed", changed);
        if self.verify {
            verify::verify_module(ir).map_err(|e| e.after_pass(name))?;
        }
        Ok(changed)
    }

    fn scalar_fixpoint(&self, ir: &mut IrModule, fi: usize) -> Result<(), VerifyError> {
        let cfg = self.cfg;
        let profile = self.profile;
        for _ in 0..4 {
            let mut changed = false;
            if cfg.const_fold {
                changed |= self.func_pass("const-fold", ir, fi, |f| {
                    passes::const_fold::run(f, profile)
                })?;
            }
            if cfg.copy_prop {
                changed |= self.func_pass("copy-prop", ir, fi, passes::copy_prop::run)?;
            }
            if cfg.cse {
                changed |= self.func_pass("cse", ir, fi, passes::cse::run)?;
            }
            if cfg.dce {
                changed |= self.func_pass("dce", ir, fi, passes::dce::run)?;
            }
            if cfg.simplify_cfg {
                changed |= self.func_pass("simplify-cfg", ir, fi, passes::simplify_cfg::run)?;
            }
            if !changed {
                break;
            }
        }
        Ok(())
    }

    fn run(&self, ir: &mut IrModule) -> Result<(), VerifyError> {
        let cfg = self.cfg;
        if self.verify {
            // Catch lowering bugs before blaming any pass.
            verify::verify_module(ir).map_err(|e| e.after_pass("lower"))?;
        }
        if cfg.inline {
            self.module_pass("inline", ir, |m| {
                passes::inline::run(m);
                true
            })?;
        }
        for fi in 0..ir.funcs.len() {
            if cfg.mem2reg {
                self.func_pass("mem2reg", ir, fi, passes::mem2reg::run)?;
            }
            self.scalar_fixpoint(ir, fi)?;
            if cfg.licm {
                self.func_pass("licm", ir, fi, passes::licm::run)?;
            }
            if cfg.strength_reduce {
                self.func_pass("strength-reduce", ir, fi, passes::strength_reduce::run)?;
                if cfg.dce {
                    self.func_pass("dce", ir, fi, passes::dce::run)?;
                }
            }
            if cfg.cross_jump {
                self.func_pass("cross-jump", ir, fi, passes::cross_jump::run)?;
            }
        }
        // Unrolling runs late (it duplicates definitions, which would defeat
        // LICM's single-definition reasoning if run earlier), followed by a
        // second scalar round that merges the duplicated exit tests.
        if cfg.unroll {
            self.module_pass("unroll", ir, |m| {
                passes::unroll::run(m);
                true
            })?;
            for fi in 0..ir.funcs.len() {
                self.scalar_fixpoint(ir, fi)?;
            }
        }
        for fi in 0..ir.funcs.len() {
            if cfg.schedule {
                self.func_pass("schedule", ir, fi, passes::schedule::run)?;
            }
        }
        Ok(())
    }
}

/// Runs the configured pass pipeline over a module in place, verifying the
/// IR after every pass when `verify` is on.
///
/// Pass order follows GCC's broad staging: inlining first (so every later
/// pass sees merged bodies), the scalar/loop pipeline next, and loop
/// unrolling *late* (unrolling duplicates definitions, which would defeat
/// the single-definition reasoning in LICM if run earlier), with scheduling
/// last over the final block shapes.
///
/// # Errors
///
/// The first invariant violation found, naming the offending pass,
/// function, block, and instruction.
pub fn run_pipeline_checked(
    ir: &mut IrModule,
    cfg: PassConfig,
    profile: Profile,
    verify: bool,
) -> Result<(), VerifyError> {
    Pipeline {
        cfg,
        profile,
        verify,
    }
    .run(ir)
}

/// Runs the configured pass pipeline over a module in place, with
/// verification at [`verify_default`]. Panics with the full diagnostic on a
/// verifier failure (a miscompile is a bug, not a recoverable condition).
pub fn run_pipeline(ir: &mut IrModule, cfg: PassConfig, profile: Profile) {
    if let Err(e) = run_pipeline_checked(ir, cfg, profile, verify_default()) {
        panic!("{e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered() {
        assert!(OptLevel::O0 < OptLevel::O1);
        assert!(OptLevel::O2 < OptLevel::O3);
    }

    #[test]
    fn parse_roundtrip() {
        for l in OptLevel::ALL {
            assert_eq!(l.to_string().parse::<OptLevel>().unwrap(), l);
        }
        assert_eq!("-O2".parse::<OptLevel>().unwrap(), OptLevel::O2);
        assert!("O9".parse::<OptLevel>().is_err());
    }

    #[test]
    fn o0_enables_nothing() {
        let c = PassConfig::for_level(OptLevel::O0);
        assert!(!c.mem2reg && !c.cse && !c.inline);
    }

    #[test]
    fn levels_are_cumulative() {
        let o1 = PassConfig::for_level(OptLevel::O1);
        let o2 = PassConfig::for_level(OptLevel::O2);
        let o3 = PassConfig::for_level(OptLevel::O3);
        assert!(o1.mem2reg && !o1.cse);
        assert!(o2.mem2reg && o2.cse && !o2.inline);
        assert!(o3.cse && o3.inline && o3.unroll);
    }

    #[test]
    fn without_disables_single_pass() {
        let c = PassConfig::for_level(OptLevel::O2).without("cse");
        assert!(!c.cse && c.licm);
    }

    #[test]
    fn broken_pass_is_caught_with_diagnostic() {
        // An intentionally-broken "pass" that deletes every defining
        // instruction but leaves the uses behind. The driver must catch it
        // and name the pass, function, and block in the diagnostic.
        let mut ir = crate::passes::testutil::ir_of("void main() { int a = 1; out(a); }");
        let p = Pipeline {
            cfg: PassConfig::for_level(OptLevel::O1),
            profile: Profile::A64,
            verify: true,
        };
        let err = p
            .func_pass("break-defs", &mut ir, 0, |f| {
                for b in &mut f.blocks {
                    b.insts.retain(|i| i.def().is_none());
                }
                true
            })
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("`break-defs`"), "{msg}");
        assert!(msg.contains("`main`"), "{msg}");
        assert!(msg.contains("bb"), "{msg}");
    }

    #[test]
    fn verified_pipeline_accepts_all_levels() {
        let src = "
            int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
            void main() { int i = 0; while (i < 6) { out(fib(i)); i = i + 1; } }";
        for profile in [Profile::A32, Profile::A64] {
            for level in OptLevel::ALL {
                let mut ir = crate::passes::testutil::ir_of(src);
                run_pipeline_checked(&mut ir, PassConfig::for_level(level), profile, true)
                    .unwrap_or_else(|e| panic!("{profile:?} {level}: {e}"));
            }
        }
    }
}
