//! Characterizes a *user-provided* MiniC program — the study's machinery is
//! not limited to the built-in benchmark suite.
//!
//! ```sh
//! cargo run --release -p softerr --example custom_workload
//! ```

use softerr::{
    CampaignConfig, Compiler, FaultClass, Injector, MachineConfig, OptLevel, SamplingPlan,
    Structure, Table,
};

/// A user workload: iterative matrix-vector products in fixed point.
const SOURCE: &str = "
    int mat[64];
    int vec[8];
    int acc[8];
    u32 seed;
    int rnd() {
        seed = seed * 1103515245 + 12345;
        return (seed >> 16) & 0x7FFF;
    }
    void main() {
        seed = 2718;
        for (int i = 0; i < 64; i = i + 1) mat[i] = rnd() % 256 - 128;
        for (int i = 0; i < 8; i = i + 1) vec[i] = rnd() % 256 - 128;
        for (int rep = 0; rep < 12; rep = rep + 1) {
            for (int r = 0; r < 8; r = r + 1) {
                int s = 0;
                for (int c = 0; c < 8; c = c + 1) s = s + mat[r * 8 + c] * vec[c];
                acc[r] = s >> 8;
            }
            for (int r = 0; r < 8; r = r + 1) vec[r] = acc[r];
        }
        int cks = 0;
        for (int r = 0; r < 8; r = r + 1) cks = cks + vec[r] * (r + 1);
        out(cks);
    }";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = MachineConfig::cortex_a15();
    let compiled = Compiler::new(machine.profile, OptLevel::O2).compile(SOURCE)?;
    let injector = Injector::new(&machine, &compiled.program)?;
    println!(
        "custom workload on {}: {} cycles fault-free, output {:?}\n",
        machine.name,
        injector.golden().cycles,
        injector.golden().output
    );

    let mut table = Table::new(vec![
        "structure".into(),
        "AVF".into(),
        "SDC".into(),
        "Crash".into(),
        "Timeout".into(),
        "Assert".into(),
    ]);
    for structure in [
        Structure::L1IData,
        Structure::L1DData,
        Structure::RegFile,
        Structure::IqSrc,
        Structure::RobPc,
        Structure::LoadQueue,
    ] {
        let c = injector
            .run(
                structure,
                &CampaignConfig {
                    plan: SamplingPlan::fixed(120),
                    seed: 99,
                    ..CampaignConfig::default()
                },
            )
            .execute()
            .result;
        table.row(vec![
            structure.name().into(),
            format!("{:.3}", c.avf()),
            format!("{:.3}", c.fraction(FaultClass::Sdc)),
            format!("{:.3}", c.fraction(FaultClass::Crash)),
            format!("{:.3}", c.fraction(FaultClass::Timeout)),
            format!("{:.3}", c.fraction(FaultClass::Assert)),
        ]);
    }
    println!("{table}");
    Ok(())
}
