//! Shows how ECC protection choices change the CPU failure rate across
//! optimization levels — a miniature of the paper's Fig. 12 analysis.
//!
//! ```sh
//! cargo run --release -p softerr --example ecc_tradeoff
//! ```

use softerr::{EccScheme, OptLevel, SamplingPlan, Study, StudyConfig, Table, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A one-workload study keeps this example fast; the `repro` harness in
    // softerr-bench runs the full grid.
    let config = StudyConfig {
        workloads: vec![Workload::Rijndael],
        plan: SamplingPlan::fixed(80),
        seed: 2024,
        ..StudyConfig::default()
    };
    println!("running {} injections...\n", config.total_injections());
    let results = Study::new(config).run()?;

    for machine in results.machine_names() {
        println!("== {machine}");
        let mut table = Table::new(vec![
            "ECC scheme".into(),
            "O0".into(),
            "O1".into(),
            "O2".into(),
            "O3".into(),
        ]);
        for ecc in EccScheme::ALL {
            let mut row = vec![ecc.to_string()];
            for level in OptLevel::ALL {
                row.push(format!(
                    "{:.2}",
                    results.cpu_fit(&machine, Workload::Rijndael, level, ecc)
                ));
            }
            table.row(row);
        }
        println!("{table}");
    }
    println!("FIT rates in failures per 10^9 device-hours; lower is better.");
    println!("With ECC on L1D+L2, the large cache arrays stop contributing");
    println!("and the pipeline structures dominate the failure rate.");
    Ok(())
}
