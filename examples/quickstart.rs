//! Quickstart: compile one benchmark, run it on the cycle-level simulator,
//! and inject a handful of transient faults into the physical register
//! file.
//!
//! ```sh
//! cargo run --release -p softerr --example quickstart
//! ```

use softerr::{
    CampaignConfig, Compiler, Injector, MachineConfig, OptLevel, SamplingPlan, Scale, Structure,
    Workload,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick a machine (Cortex-A72-like, Armv8-class) and a benchmark.
    let machine = MachineConfig::cortex_a72();
    let workload = Workload::Qsort;
    println!("machine : {}", machine.name);
    println!("workload: {} — {}", workload, workload.description());

    // 2. Compile at -O2 with the built-in MiniC compiler.
    let compiled =
        Compiler::new(machine.profile, OptLevel::O2).compile(&workload.source(Scale::Tiny))?;
    println!(
        "compiled: {} instructions, {} bytes of data",
        compiled.stats.code_words, compiled.stats.data_bytes
    );

    // 3. The injector runs the fault-free (golden) execution first.
    let injector = Injector::new(&machine, &compiled.program)?;
    let golden = injector.golden();
    println!(
        "golden  : {} cycles, {} instructions (IPC {:.2})",
        golden.cycles,
        golden.retired,
        golden.retired as f64 / golden.cycles as f64
    );

    // 4. A small fault-injection campaign against the register file.
    let campaign = injector
        .run(
            Structure::RegFile,
            &CampaignConfig {
                plan: SamplingPlan::fixed(200),
                seed: 42,
                ..CampaignConfig::default()
            },
        )
        .execute()
        .result;
    println!(
        "register file: AVF = {:.3} (±{:.3} at 99% confidence)",
        campaign.avf(),
        campaign.margin_99()
    );
    for class in softerr::FaultClass::ALL {
        println!(
            "  {:8} {:5.1}%",
            class.name(),
            100.0 * campaign.fraction(class)
        );
    }
    Ok(())
}
