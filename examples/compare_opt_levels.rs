//! Compares the vulnerability of the physical register file across the
//! four optimization levels on both machines — a miniature of the paper's
//! Fig. 5 observation that optimized code is *more* vulnerable in the RF.
//!
//! ```sh
//! cargo run --release -p softerr --example compare_opt_levels
//! ```

use softerr::{
    CampaignConfig, Compiler, Injector, MachineConfig, OptLevel, SamplingPlan, Scale, Structure,
    Table, Workload,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Workload::Blowfish;
    println!(
        "Register-file AVF for {} across optimization levels\n",
        workload
    );
    let mut table = Table::new(vec![
        "machine".into(),
        "O0".into(),
        "O1".into(),
        "O2".into(),
        "O3".into(),
        "cycles O0".into(),
        "cycles O3".into(),
    ]);
    for machine in MachineConfig::paper_machines() {
        let mut avfs = Vec::new();
        let mut cycles = Vec::new();
        for level in OptLevel::ALL {
            let compiled =
                Compiler::new(machine.profile, level).compile(&workload.source(Scale::Tiny))?;
            let injector = Injector::new(&machine, &compiled.program)?;
            cycles.push(injector.golden().cycles);
            let campaign = injector
                .run(
                    Structure::RegFile,
                    &CampaignConfig {
                        plan: SamplingPlan::fixed(150),
                        seed: 7,
                        ..CampaignConfig::default()
                    },
                )
                .execute()
                .result;
            avfs.push(campaign.avf());
        }
        table.row(vec![
            machine.name.clone(),
            format!("{:.3}", avfs[0]),
            format!("{:.3}", avfs[1]),
            format!("{:.3}", avfs[2]),
            format!("{:.3}", avfs[3]),
            cycles[0].to_string(),
            cycles[3].to_string(),
        ]);
    }
    println!("{table}");
    println!("Expected shape (paper §IV.E): optimized code keeps values in");
    println!("registers longer, so O1–O3 typically raise the RF AVF over O0");
    println!("while cutting execution time.");
    Ok(())
}
