# Development entry points. `just ci` is what the CI workflow runs.

# Tier-1: build and the full test suite (unit + integration + property).
test:
    cargo build --release
    cargo test -q --release

# Lints: clippy over every target, warnings are errors.
lint:
    cargo clippy --all-targets -- -D warnings
    cargo fmt --check

# IR lint: compile all 8 workloads at O0-O3 for both profiles with the
# compiler's IR verifier re-run after every pass (the `verify-ir` feature).
lint-ir:
    cargo test -p softerr --features verify-ir --release -q --test verify_sweep

# Benchmarks. Each group writes a BENCH_<group>.json summary into the repo
# root (mean ns per iteration and derived throughput per benchmark).
bench:
    cargo bench -p softerr-bench

# The headline engine benchmark: fresh vs golden-prefix-checkpointed
# campaign throughput (BENCH_injection_throughput.json).
bench-injection:
    cargo bench -p softerr-bench --bench injection_throughput

# Forensics smoke: a small recorded RegFile campaign (JSONL records +
# progress + forensic tables + golden-run counters) into target/.
forensics:
    cargo run --release -p softerr-bench --bin campaign -- \
        --structure rf -n 200 --threads 2 \
        --records target/forensics-records.jsonl --metrics

# Everything the CI gate requires.
ci: test lint lint-ir
