# Development entry points. `just ci` is what the CI workflow runs.

# Tier-1: build and the full test suite (unit + integration + property).
test:
    cargo build --release
    cargo test -q --release

# Lints: clippy over every target, warnings are errors.
lint:
    cargo clippy --all-targets -- -D warnings
    cargo fmt --check

# IR lint: compile all 8 workloads at O0-O3 for both profiles with the
# compiler's IR verifier re-run after every pass (the `verify-ir` feature).
lint-ir:
    cargo test -p softerr --features verify-ir --release -q --test verify_sweep

# Benchmarks. Each group writes a BENCH_<group>.json summary into the repo
# root (mean ns per iteration and derived throughput per benchmark).
bench:
    cargo bench -p softerr-bench

# The headline engine benchmark: fresh vs golden-prefix-checkpointed
# campaign throughput (BENCH_injection_throughput.json).
bench-injection:
    cargo bench -p softerr-bench --bench injection_throughput

# Sweep orchestration: run a quick study cold (populating the result
# store), then warm, and assert the warm pass was entirely store-served
# (the grep rejects a warm run that executed even one campaign). Also
# refreshes BENCH_study_sweep.json (serial vs cell-parallel vs warm).
sweep:
    rm -rf target/softerr-store-smoke
    cargo run --release -p softerr-bench --bin repro -- fig5 \
        --scale quick --jobs 0 --results target/softerr-store-smoke
    cargo run --release -p softerr-bench --bin repro -- fig5 \
        --scale quick --jobs 0 --results target/softerr-store-smoke 2>&1 \
        | grep "all 64 cells served from result store (0 campaigns executed)"
    cargo bench -p softerr-bench --bench study_sweep

# Forensics smoke: a small recorded RegFile campaign (JSONL records +
# progress + forensic tables + golden-run counters) into target/.
forensics:
    cargo run --release -p softerr-bench --bin campaign -- \
        --structure rf -n 200 --threads 2 \
        --records target/forensics-records.jsonl --metrics

# Prune self-check: quick campaigns in `--prune verify` mode, which
# re-simulates every fault the liveness pruner would skip and panics if
# any of them simulates as non-Masked. One sparse structure (high prune
# rate) and one busy one, on both paper machines.
prune-check:
    cargo run --release -p softerr-bench --bin campaign -- \
        --machine a15 --workload qsort --level O2 --structure rf \
        -n 200 --prune verify
    cargo run --release -p softerr-bench --bin campaign -- \
        --machine a72 --workload sha --level O2 --structure rob.pc \
        -n 200 --prune verify

# COW self-check: the copy-on-write forking equivalence net plus verify-mode
# campaigns on both machines over the structure whose forks used to be the
# most expensive (the L1D arrays). `--prune verify` re-simulates every
# prunable fault through the COW convoy and panics on any mismatch, so a
# chunk-sharing bug that leaked state between children cannot pass.
cow-check:
    cargo test -p softerr --release -q --test cow_equivalence
    cargo run --release -p softerr-bench --bin campaign -- \
        --machine a15 --workload qsort --level O2 --structure l1d.data \
        -n 200 --prune verify
    cargo run --release -p softerr-bench --bin campaign -- \
        --machine a72 --workload qsort --level O2 --structure l1d.data \
        -n 200 --prune verify

# Static-prune self-check: RF campaigns in `--prune-static verify` mode on
# both paper machines, which re-simulates every fault the compiler's static
# bit-demand analysis would skip and panics if any of them simulates as
# non-Masked. sha and blowfish carry the highest statically-masked bit
# fractions (shift/mask-heavy u32 code), so they exercise the most
# annotated writebacks per campaign.
static-check:
    cargo run --release -p softerr-bench --bin campaign -- \
        --machine a15 --workload blowfish --level O2 --structure rf \
        -n 200 --prune-static verify
    cargo run --release -p softerr-bench --bin campaign -- \
        --machine a72 --workload sha --level O2 --structure rf \
        -n 200 --prune-static verify

# Sampling self-check: importance campaigns in `--sampler importance/verify`
# mode on both paper machines, which rerun a uniform campaign at the
# achieved reweighted margin and panic unless the two AVF estimates agree
# within their combined margins. One sparse structure (l1i.data, where the
# live-and-demanded subpopulation is ~1-2% of the sites, so the weight does
# the most work) and the register file.
sampling-check:
    cargo run --release -p softerr-bench --bin campaign -- \
        --machine a15 --workload qsort --level O2 --structure l1i.data \
        --target-margin 0.1 -n 25 --sampler importance/verify
    cargo run --release -p softerr-bench --bin campaign -- \
        --machine a72 --workload sha --level O2 --structure rf \
        --target-margin 0.1 -n 25 --sampler importance/verify

# The uniform-vs-importance efficiency table across the 64-cell paper grid:
# AVF +/- margin and forked child sims per cell at equal target margin.
sampling-table:
    cargo run --release -p softerr-bench --bin repro -- sampling --threads 2

# Bench regression gate: regenerate the injection-throughput summary and
# fail if any benchmark regressed >20% against the committed baseline —
# except the checkpointed RegFile campaign, which is held to the 3%
# telemetry budget: its committed baseline predates span instrumentation,
# so staying inside 3% proves disabled tracing is effectively free. The
# bench also refreshes BENCH_injection_throughput.profile.txt (a traced
# stage-attribution table explaining what the checkpoint row is made of).
bench-gate:
    cp BENCH_injection_throughput.json target/bench-baseline.json
    cargo bench -p softerr-bench --bench injection_throughput
    cargo run --release -p softerr-bench --bin bench_gate -- \
        target/bench-baseline.json BENCH_injection_throughput.json \
        --budget rf_campaign/checkpoint=0.03 \
        --budget l1i_campaign/importance=0.20

# Distributed-study self-check: a coordinator plus two forked local
# workers run the quick grid into a fresh store, then `--check-serial`
# re-runs the same study serially and asserts results and every store
# cell byte-for-byte (the grep makes the gate explicit in the recipe).
# The coordinator's per-cell progress/forensics JSONL lands in
# target/serve-progress.jsonl.
serve-check:
    rm -rf target/softerr-serve-store
    cargo run --release -p softerr-bench --bin repro -- serve \
        --scale quick --spawn-workers 2 --check-serial \
        --results target/softerr-serve-store \
        --progress-log target/serve-progress.jsonl --quiet 2>&1 \
        | grep "bit-identical to a serial run"

# Stage-attribution profile of a quick study grid (8 workloads x O0-O3 x
# both machines): per-cell, per-stage, and per-worker wall-time tables on
# stdout, plus a Perfetto-loadable Chrome trace in target/.
profile:
    cargo run --release -p softerr-bench --bin repro -- profile \
        --scale quick --jobs 0 --quiet \
        --results target/softerr-profile-store \
        --trace target/repro-trace.json

# Everything the CI gate requires.
ci: test lint lint-ir prune-check static-check cow-check sampling-check serve-check bench-gate
