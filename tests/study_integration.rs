//! Integration tests of the full study pipeline through the `softerr`
//! facade: grid execution, metric invariants, and result persistence.

use softerr::{
    EccScheme, FaultClass, OptLevel, SamplingPlan, Scale, Structure, Study, StudyConfig,
    StudyResults, Workload,
};

/// One shared study for the whole test binary (campaigns are expensive).
fn small_study() -> &'static StudyResults {
    use std::sync::OnceLock;
    static RESULTS: OnceLock<StudyResults> = OnceLock::new();
    RESULTS.get_or_init(|| {
        let config = StudyConfig {
            workloads: vec![Workload::Qsort, Workload::Fft],
            levels: vec![OptLevel::O0, OptLevel::O2],
            scale: Scale::Tiny,
            plan: SamplingPlan::fixed(30),
            seed: 1234,
            threads: 1,
            ..StudyConfig::default()
        };
        Study::new(config).run().expect("study failed")
    })
}

#[test]
fn study_produces_full_grid() {
    let results = small_study();
    assert_eq!(
        results.cells.len(),
        2 * 2 * 2,
        "machines × workloads × levels"
    );
    for (key, cell) in &results.cells {
        assert_eq!(cell.campaigns.len(), 15, "{key}: all structures measured");
        assert!(cell.golden_cycles > 0);
        assert!(cell.golden_retired > 0);
        assert!(cell.code_words > 0);
        for c in &cell.campaigns {
            assert_eq!(c.total(), 30, "{key}/{}", c.structure);
            assert!(c.bit_population > 0);
        }
    }
}

#[test]
fn avf_and_fractions_are_consistent() {
    let results = small_study();
    for machine in results.machine_names() {
        for &workload in &[Workload::Qsort, Workload::Fft] {
            for level in [OptLevel::O0, OptLevel::O2] {
                for structure in Structure::ALL {
                    let avf = results.avf(&machine, workload, level, structure);
                    assert!((0.0..=1.0).contains(&avf));
                    let nonmasked: f64 = [
                        FaultClass::Sdc,
                        FaultClass::Crash,
                        FaultClass::Timeout,
                        FaultClass::Assert,
                    ]
                    .iter()
                    .map(|&c| results.fraction(&machine, workload, level, structure, c))
                    .sum();
                    assert!(
                        (avf - nonmasked).abs() < 1e-9,
                        "AVF must equal the non-masked fraction"
                    );
                }
            }
        }
    }
}

#[test]
fn weighted_avf_lies_between_extremes() {
    let results = small_study();
    for machine in results.machine_names() {
        for structure in Structure::ALL {
            let a = results.avf(&machine, Workload::Qsort, OptLevel::O2, structure);
            let b = results.avf(&machine, Workload::Fft, OptLevel::O2, structure);
            let w = results.weighted_avf(&machine, OptLevel::O2, structure);
            let (lo, hi) = (a.min(b), a.max(b));
            assert!(
                w >= lo - 1e-9 && w <= hi + 1e-9,
                "{machine}/{structure}: wAVF {w} outside [{lo}, {hi}]"
            );
        }
    }
}

#[test]
fn ecc_monotonically_reduces_fit() {
    let results = small_study();
    for machine in results.machine_names() {
        for level in [OptLevel::O0, OptLevel::O2] {
            let unprot = results.aggregate_cpu_fit(&machine, level, EccScheme::None);
            let l2 = results.aggregate_cpu_fit(&machine, level, EccScheme::L2Only);
            let both = results.aggregate_cpu_fit(&machine, level, EccScheme::L1dAndL2);
            assert!(unprot >= l2, "{machine}/{level}: L2 ECC must not raise FIT");
            assert!(l2 >= both, "{machine}/{level}: more ECC must not raise FIT");
        }
    }
}

#[test]
fn fpe_decreases_for_equal_fit_but_faster_runs() {
    let results = small_study();
    // O2 is faster than O0; if its FIT were identical, FPE must be lower.
    // We verify the definitional relation FPE = FIT × t rather than the
    // noisy measured comparison.
    for machine in results.machine_names() {
        let fit = results.cpu_fit(&machine, Workload::Qsort, OptLevel::O2, EccScheme::None);
        let fpe = results.fpe(&machine, Workload::Qsort, OptLevel::O2, EccScheme::None);
        let cfg = results.machine(&machine).unwrap();
        let secs =
            results.cycles(&machine, Workload::Qsort, OptLevel::O2) as f64 / (cfg.freq_ghz * 1e9);
        let expect = fit * (secs / 3600.0) / 1e9;
        assert!((fpe - expect).abs() <= f64::EPSILON.max(expect * 1e-12));
    }
}

#[test]
fn optimization_speeds_up_every_cell() {
    let results = small_study();
    for machine in results.machine_names() {
        for &w in &[Workload::Qsort, Workload::Fft] {
            assert!(
                results.speedup_vs_o0(&machine, w, OptLevel::O2) > 1.0,
                "{machine}/{w}: O2 must be faster than O0"
            );
        }
    }
}

#[test]
fn save_load_roundtrip() {
    let results = small_study();
    let dir = std::env::temp_dir().join("softerr_test_results");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("study.json");
    results.save(&path).unwrap();
    let loaded = StudyResults::load(&path).unwrap();
    assert_eq!(results, &loaded);
    std::fs::remove_file(&path).ok();
}

#[test]
fn studies_are_reproducible() {
    let mk = || {
        let config = StudyConfig {
            workloads: vec![Workload::Fft],
            levels: vec![OptLevel::O1],
            structures: vec![Structure::RegFile, Structure::IqSrc],
            plan: SamplingPlan::fixed(20),
            seed: 777,
            ..StudyConfig::default()
        };
        Study::new(config).run().unwrap()
    };
    assert_eq!(mk(), mk());
}

#[test]
fn progress_callback_reports_each_cell() {
    let config = StudyConfig {
        workloads: vec![Workload::Patricia],
        levels: vec![OptLevel::O0],
        structures: vec![Structure::RegFile],
        plan: SamplingPlan::fixed(5),
        seed: 3,
        ..StudyConfig::default()
    };
    let mut messages = Vec::new();
    Study::new(config)
        .run_with_progress(|m| messages.push(m.to_string()))
        .unwrap();
    assert_eq!(messages.len(), 2, "one message per (machine × cell)");
    assert!(messages[0].contains("patricia"));
}
