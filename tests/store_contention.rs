//! Multi-*process* contention on one `ResultStore`.
//!
//! Thread-level races are covered by the store's unit tests; this test
//! covers what they cannot — separate processes share no `TMP_SEQ`
//! counter, so writer-unique tmp paths must come from the pid as well.
//! The parent re-executes its own test binary (`current_exe`) with an
//! env-var-gated helper "test" as the child body: each child hammers
//! save/load over the same small cell set, reports its counters on
//! stdout, and the parent asserts that nothing tore, nothing was
//! quarantined, no tmp litter survived, and every counter adds up.

use softerr::{CellKey, CellResult, OptLevel, ResultStore, Workload};
use std::process::Command;

/// Gate for the child body: set to the store root by the parent.
const ENV_ROOT: &str = "SOFTERR_STORE_HAMMER_ROOT";
const CHILDREN: usize = 4;
const ROUNDS: usize = 20;
const CELLS: usize = 3;

fn cell(i: usize) -> (String, CellKey, CellResult) {
    use softerr::{CampaignResult, ClassCounts, Structure};
    let key = CellKey {
        machine: format!("machine-{i}"),
        workload: Workload::Qsort,
        level: OptLevel::O2,
    };
    let result = CellResult {
        golden_cycles: 1_000 + i as u64,
        golden_retired: 500 + i as u64,
        code_words: 64,
        campaigns: vec![CampaignResult {
            structure: Structure::RegFile,
            bit_population: 2048,
            golden_cycles: 1_000 + i as u64,
            counts: ClassCounts {
                masked: 9,
                sdc: i as u64,
                ..ClassCounts::default()
            },
            weight: 1.0,
            live_population: None,
        }],
    };
    (format!("{i:016x}"), key, result)
}

/// The child body. Runs only when the parent sets [`ENV_ROOT`]; under a
/// plain `cargo test` it is an immediate pass.
#[test]
fn child_hammer_helper() {
    let Ok(root) = std::env::var(ENV_ROOT) else {
        return;
    };
    let store = ResultStore::open(root).expect("child opens the shared store");
    for _ in 0..ROUNDS {
        for i in 0..CELLS {
            let (hash, key, result) = cell(i);
            store.save(&hash, &key, &result).expect("child save");
            let loaded = store.load(&hash, &key).expect("child load hits");
            assert_eq!(loaded, result, "a stored cell must read back intact");
        }
    }
    // Machine-parsed by the parent; keep the shape in sync below.
    println!(
        "HAMMER stores={} hits={} misses={} read_errors={} quarantined={}",
        store.stores(),
        store.hits(),
        store.misses(),
        store.read_errors(),
        store.quarantined()
    );
}

#[test]
fn concurrent_processes_never_tear_or_quarantine() {
    let root =
        std::env::temp_dir().join(format!("softerr-store-contention-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    std::fs::create_dir_all(&root).unwrap();

    let exe = std::env::current_exe().expect("own test binary");
    let children: Vec<_> = (0..CHILDREN)
        .map(|_| {
            Command::new(&exe)
                .args(["--exact", "child_hammer_helper", "--nocapture"])
                .env(ENV_ROOT, &root)
                .stdout(std::process::Stdio::piped())
                .stderr(std::process::Stdio::null())
                .spawn()
                .expect("spawn child process")
        })
        .collect();

    let mut stores = 0u64;
    let mut hits = 0u64;
    let mut misses = 0u64;
    let mut read_errors = 0u64;
    let mut quarantined = 0u64;
    for child in children {
        let out = child.wait_with_output().expect("child completes");
        assert!(
            out.status.success(),
            "child failed: {}",
            String::from_utf8_lossy(&out.stdout)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        // Under --nocapture the line may share a line with the harness's
        // own "test ... ok" chatter, so locate it by substring.
        let line = stdout
            .lines()
            .find_map(|l| l.find("HAMMER ").map(|at| &l[at + "HAMMER ".len()..]))
            .unwrap_or_else(|| panic!("no counter line in child output: {stdout}"));
        for field in line.split_whitespace() {
            let Some((name, value)) = field.split_once('=') else {
                continue; // trailing harness chatter, not a counter
            };
            let value: u64 = value.parse().expect("numeric counter");
            match name {
                "stores" => stores += value,
                "hits" => hits += value,
                "misses" => misses += value,
                "read_errors" => read_errors += value,
                "quarantined" => quarantined += value,
                other => panic!("unknown counter {other}"),
            }
        }
    }

    // Every child performed exactly ROUNDS × CELLS saves and as many
    // loads, and each load followed that child's own save of the same
    // cell, so it can only be a hit.
    let per_child = (ROUNDS * CELLS) as u64;
    assert_eq!(stores, CHILDREN as u64 * per_child, "every save succeeded");
    assert_eq!(hits, CHILDREN as u64 * per_child, "every load was a hit");
    assert_eq!(misses, 0, "no load saw a missing or torn cell");
    assert_eq!(read_errors, 0, "no read failed for a non-NotFound reason");
    assert_eq!(quarantined, 0, "no cell was ever corrupt on disk");

    // The directory holds exactly the cell files: no tmp litter from any
    // writer, no quarantine directory, nothing torn.
    let store = ResultStore::open(&root).expect("parent opens the store");
    let entries: Vec<String> = std::fs::read_dir(root.join("cells"))
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    assert_eq!(
        entries.len(),
        CELLS,
        "exactly one file per cell, no litter: {entries:?}"
    );
    assert!(
        entries.iter().all(|n| n.ends_with(".json")),
        "unexpected files: {entries:?}"
    );
    for i in 0..CELLS {
        let (hash, key, result) = cell(i);
        assert_eq!(
            store.load(&hash, &key),
            Some(result),
            "cell {i} must be a complete, verifiable copy"
        );
    }
    assert_eq!(store.quarantined(), 0);
    std::fs::remove_dir_all(&root).ok();
}
