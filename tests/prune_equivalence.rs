//! Property test: liveness-based pruning must be invisible in the results.
//! A campaign with `prune: On` skips every fault that lies outside all live
//! windows of the golden run, yet its class tallies — and every non-masked
//! fault record — must be bit-identical to the unpruned campaign, on both
//! paper machines, for arbitrary campaign seeds and structures.

use proptest::prelude::*;
use softerr::{
    CampaignConfig, Compiler, FaultClass, Injector, MachineConfig, OptLevel, Program, PruneMode,
    SamplingPlan, Structure,
};
use std::sync::OnceLock;

/// Small mixed workload: ALU loops, memory traffic, and data-dependent
/// branches, so every structure class sees live state.
const SOURCE: &str = "
    int tab[24];
    void main() {
        for (int i = 0; i < 24; i = i + 1) tab[i] = i * 5 - 7;
        int acc = 0;
        for (int i = 0; i < 24; i = i + 1) {
            if (tab[i] > 20) acc = acc + tab[i];
            else acc = acc - 1;
        }
        out(acc);
    }";

fn machines() -> &'static Vec<(MachineConfig, Program)> {
    static CELL: OnceLock<Vec<(MachineConfig, Program)>> = OnceLock::new();
    CELL.get_or_init(|| {
        MachineConfig::paper_machines()
            .into_iter()
            .map(|m| {
                let program = Compiler::new(m.profile, OptLevel::O2)
                    .compile(SOURCE)
                    .expect("workload compiles")
                    .program;
                (m, program)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    #[test]
    fn pruned_campaign_is_bit_identical_to_unpruned(
        seed in any::<u64>(),
        s in 0usize..15,
    ) {
        let structure = Structure::ALL[s];
        for (machine, program) in machines() {
            let injector = Injector::new(machine, program).expect("golden run");
            let off =
                CampaignConfig { plan: SamplingPlan::fixed(40), seed, ..CampaignConfig::default() };
            let on = CampaignConfig { plan: off.plan.prune(PruneMode::On), ..off };
            let full = injector.run(structure, &off).records(true).execute();
            let pruned = injector.run(structure, &on).records(true).execute();
            prop_assert_eq!(
                &full.result, &pruned.result,
                "{}/{}: pruning changed the class tallies (seed {})",
                machine.name, structure, seed
            );
            prop_assert_eq!(
                &full.classes, &pruned.classes,
                "{}/{}: pruning changed a per-fault verdict (seed {})",
                machine.name, structure, seed
            );
            let full_recs = full.records.expect("records were requested");
            let pruned_recs = pruned.records.expect("records were requested");
            prop_assert_eq!(full_recs.len(), pruned_recs.len());
            for (a, b) in full_recs.iter().zip(&pruned_recs) {
                if b.class != FaultClass::Masked {
                    prop_assert_eq!(
                        a, b,
                        "{}/{}: non-masked record differs under pruning (seed {})",
                        machine.name, structure, seed
                    );
                    prop_assert!(!b.pruned, "only Masked verdicts may come from the pruner");
                }
            }
        }
    }
}

/// Deterministic companion: the property above would pass vacuously if the
/// pruner never fired, so pin down that a RegFile campaign actually prunes
/// on both paper machines (register bits spend most cycles outside any
/// [write, last-read] window).
#[test]
fn regfile_campaigns_actually_prune_on_both_machines() {
    for (machine, program) in machines() {
        let injector = Injector::new(machine, program).expect("golden run");
        let cfg = CampaignConfig {
            plan: SamplingPlan::fixed(60).prune(PruneMode::On),
            seed: 7,
            ..CampaignConfig::default()
        };
        let out = injector
            .run(Structure::RegFile, &cfg)
            .records(true)
            .execute();
        let pruned = out
            .records
            .expect("records were requested")
            .iter()
            .filter(|r| r.pruned)
            .count();
        assert!(
            pruned > 0,
            "{}: no RegFile fault was pruned — the equivalence property is vacuous",
            machine.name
        );
    }
}
