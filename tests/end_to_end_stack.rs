//! Cross-crate end-to-end assertions: the compiler, reference emulator,
//! cycle-level simulator, and injector agree with each other on real
//! workloads, and the paper's central qualitative effects emerge from the
//! stack.

use softerr::{
    CampaignConfig, Compiler, Emulator, FaultClass, Injector, MachineConfig, OptLevel,
    SamplingPlan, Scale, Sim, SimOutcome, Structure, Workload,
};

#[test]
fn emulator_sim_and_injector_golden_all_agree() {
    let machine = MachineConfig::cortex_a72();
    let compiled = Compiler::new(machine.profile, OptLevel::O3)
        .compile(&Workload::Patricia.source(Scale::Tiny))
        .unwrap();

    let emu_out = Emulator::new(&compiled.program).run(1_000_000_000).unwrap();

    let mut sim = Sim::new(&machine, &compiled.program);
    let SimOutcome::Halted {
        retired,
        output,
        cycles,
    } = sim.run(1_000_000_000)
    else {
        panic!("sim did not halt");
    };
    assert_eq!(output, emu_out.output);
    assert_eq!(retired, emu_out.retired);

    let injector = Injector::new(&machine, &compiled.program).unwrap();
    assert_eq!(injector.golden().cycles, cycles);
    assert_eq!(injector.golden().output, emu_out.output);
}

#[test]
fn register_pressure_rises_with_optimization() {
    // The paper's §IV.E mechanism: optimized code uses the register file
    // harder ("higher read and write operations"). Measure read-port
    // traffic per cycle; O1 exceeds O0 on every workload and machine.
    for machine in MachineConfig::paper_machines() {
        for w in [Workload::Blowfish, Workload::Dijkstra, Workload::Sha] {
            let reads_per_cycle = |level: OptLevel| {
                let compiled = Compiler::new(machine.profile, level)
                    .compile(&w.source(Scale::Tiny))
                    .unwrap();
                let mut sim = Sim::new(&machine, &compiled.program);
                let SimOutcome::Halted { cycles, .. } = sim.run(1_000_000_000) else {
                    panic!("did not halt")
                };
                sim.stats().rf_reads as f64 / cycles as f64
            };
            let o0 = reads_per_cycle(OptLevel::O0);
            let o1 = reads_per_cycle(OptLevel::O1);
            assert!(
                o1 > o0,
                "{}/{w}: O1 RF reads/cycle ({o1:.2}) should exceed O0 ({o0:.2})",
                machine.name
            );
        }
    }
}

#[test]
fn icache_faults_crash_dcache_faults_corrupt() {
    // Paper Figs. 2–3: L1I is Crash-dominated, L1D is SDC-dominated,
    // among the non-masked outcomes.
    let machine = MachineConfig::cortex_a15();
    let compiled = Compiler::new(machine.profile, OptLevel::O1)
        .compile(&Workload::Sha.source(Scale::Tiny))
        .unwrap();
    let injector = Injector::new(&machine, &compiled.program).unwrap();
    let cfg = CampaignConfig {
        plan: SamplingPlan::fixed(400),
        seed: 5,
        threads: 1,
        checkpoint: true,
    };

    let l1i = injector.run(Structure::L1IData, &cfg).execute().result;
    if l1i.avf() > 0.02 {
        assert!(
            l1i.fraction(FaultClass::Crash) > l1i.fraction(FaultClass::Sdc),
            "L1I: crashes ({}) should dominate SDCs ({})",
            l1i.counts.crash,
            l1i.counts.sdc
        );
    }

    let l1d = injector.run(Structure::L1DData, &cfg).execute().result;
    if l1d.avf() > 0.02 {
        assert!(
            l1d.fraction(FaultClass::Sdc) >= l1d.fraction(FaultClass::Crash),
            "L1D: SDCs ({}) should dominate crashes ({})",
            l1d.counts.sdc,
            l1d.counts.crash
        );
    }
}

#[test]
fn rob_and_lsq_fail_only_via_assert() {
    // Paper Figs. 6 and 8: ROB and LQ/SQ failures are Assert-class (plus
    // timeouts from lost DONE flags); no silent corruption, no crashes.
    let machine = MachineConfig::cortex_a72();
    let compiled = Compiler::new(machine.profile, OptLevel::O2)
        .compile(&Workload::Gsm.source(Scale::Tiny))
        .unwrap();
    let injector = Injector::new(&machine, &compiled.program).unwrap();
    let cfg = CampaignConfig {
        plan: SamplingPlan::fixed(250),
        seed: 11,
        threads: 1,
        checkpoint: true,
    };
    for s in [
        Structure::LoadQueue,
        Structure::StoreQueue,
        Structure::RobPc,
        Structure::RobDest,
        Structure::RobSeq,
    ] {
        let c = injector.run(s, &cfg).execute().result;
        assert_eq!(c.counts.sdc, 0, "{s} must not produce SDC");
        assert_eq!(c.counts.crash, 0, "{s} must not produce crashes");
    }
}

#[test]
fn unused_hardware_has_low_avf() {
    // A tiny program leaves most of the L2 untouched: its AVF must be far
    // below that of the register file, which is constantly live.
    let machine = MachineConfig::cortex_a72();
    let compiled = Compiler::new(machine.profile, OptLevel::O1)
        .compile(&Workload::Fft.source(Scale::Tiny))
        .unwrap();
    let injector = Injector::new(&machine, &compiled.program).unwrap();
    let cfg = CampaignConfig {
        plan: SamplingPlan::fixed(300),
        seed: 21,
        threads: 1,
        checkpoint: true,
    };
    let l2 = injector.run(Structure::L2Data, &cfg).execute().result;
    assert!(
        l2.avf() < 0.10,
        "a 2 MiB L2 under a tiny workload should be mostly masked, got {}",
        l2.avf()
    );
}

#[test]
fn timeout_class_is_reachable_via_iq() {
    let machine = MachineConfig::cortex_a15();
    let compiled = Compiler::new(machine.profile, OptLevel::O1)
        .compile(&Workload::Qsort.source(Scale::Tiny))
        .unwrap();
    let injector = Injector::new(&machine, &compiled.program).unwrap();
    let c = injector
        .run(
            Structure::IqSrc,
            &CampaignConfig {
                plan: SamplingPlan::fixed(400),
                seed: 31,
                threads: 1,
                checkpoint: true,
            },
        )
        .execute()
        .result;
    assert!(
        c.counts.timeout > 0,
        "IQ source-tag corruption should deadlock at least once: {:?}",
        c.counts
    );
}
