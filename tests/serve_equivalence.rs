//! End-to-end equivalence of the distributed campaign service.
//!
//! The acceptance bar is *exact* equality, not statistical agreement: a
//! coordinator with two workers must produce byte-identical store cells
//! and an equal `SweepReport` to a serial `Orchestrator` run of the same
//! `StudyConfig` on both paper machines — and a worker that dies holding
//! leases must cost wall-clock time only, never cells or correctness.

use softerr::serve::{read_frame, write_frame, Request, Response, PROTOCOL_VERSION};
use softerr::{
    cell_config_hash, CellKey, Coordinator, OptLevel, Orchestrator, ResultStore, SamplingPlan,
    Structure, StudyConfig, SweepReport, WorkerOptions, Workload,
};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};

/// Both paper machines, a 2×2 (workload × level) slice of the grid, two
/// structures: 8 cells, small enough to execute in seconds.
fn tiny_config(seed: u64) -> StudyConfig {
    StudyConfig {
        workloads: vec![Workload::Qsort, Workload::Sha],
        levels: vec![OptLevel::O0, OptLevel::O2],
        structures: vec![Structure::RegFile, Structure::RobPc],
        plan: SamplingPlan::fixed(6),
        seed,
        ..StudyConfig::default()
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("softerr-serve-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Serial reference run into its own store.
fn serial_run(cfg: &StudyConfig, dir: &Path) -> SweepReport {
    Orchestrator::new(cfg.clone())
        .store(ResultStore::open(dir).expect("serial store"))
        .execute(&|_| {})
        .expect("serial run")
}

/// Serves `cfg` on an ephemeral port while `workers` run against it;
/// returns the coordinator's report and each worker's result.
fn distributed_run(
    cfg: &StudyConfig,
    dir: &Path,
    lease_ms: u64,
    workers: Vec<WorkerOptions>,
) -> (SweepReport, Vec<softerr::WorkerReport>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral listener");
    let addr = listener.local_addr().expect("listener addr").to_string();
    let coordinator = Coordinator::new(cfg.clone(), ResultStore::open(dir).expect("store"))
        .lease_ms(lease_ms)
        .progress_log(dir.join("progress.jsonl"));
    std::thread::scope(|scope| {
        let serve = scope.spawn(move || coordinator.serve(&listener).expect("serve"));
        let reports: Vec<_> = workers
            .into_iter()
            .map(|opts| {
                let addr = addr.clone();
                scope.spawn(move || softerr::run_worker(&addr, &opts).expect("worker"))
            })
            .collect::<Vec<_>>() // spawn all before joining any
            .into_iter()
            .map(|h| h.join().expect("worker thread"))
            .collect();
        (serve.join().expect("coordinator thread"), reports)
    })
}

/// Byte-compares every planned cell file between two stores.
fn assert_stores_bit_identical(cfg: &StudyConfig, a: &Path, b: &Path) {
    for machine in &cfg.machines {
        for &workload in &cfg.workloads {
            for &level in &cfg.levels {
                let hash = cell_config_hash(cfg, machine, workload, level);
                let name = format!("cells/{hash}.json");
                let left = std::fs::read(a.join(&name))
                    .unwrap_or_else(|e| panic!("{} missing {name}: {e}", a.display()));
                let right = std::fs::read(b.join(&name))
                    .unwrap_or_else(|e| panic!("{} missing {name}: {e}", b.display()));
                assert_eq!(left, right, "store cell {name} differs between runs");
            }
        }
    }
}

#[test]
fn coordinator_with_two_workers_matches_serial_bit_for_bit() {
    let cfg = tiny_config(77);
    let serial_dir = temp_dir("eq-serial");
    let dist_dir = temp_dir("eq-dist");
    let serial = serial_run(&cfg, &serial_dir);

    let workers = vec![
        WorkerOptions {
            name: "w0".into(),
            capacity: 2,
            ..WorkerOptions::default()
        },
        WorkerOptions {
            name: "w1".into(),
            capacity: 2,
            ..WorkerOptions::default()
        },
    ];
    let (dist, reports) = distributed_run(&cfg, &dist_dir, 60_000, workers);

    assert_eq!(
        serial.results, dist.results,
        "distributed results must equal the serial run exactly"
    );
    assert_eq!(serial.executed, dist.executed);
    assert_eq!(serial.cells, dist.cells);
    assert_eq!(serial.store_hits, dist.store_hits);
    assert_eq!(serial.store_misses, dist.store_misses);
    assert_eq!(serial.store_writes, dist.store_writes);
    assert_eq!(
        reports.iter().map(|r| r.completed).sum::<usize>(),
        dist.cells,
        "the two workers between them executed every cell exactly once"
    );
    assert_eq!(reports.iter().map(|r| r.rejected).sum::<usize>(), 0);
    assert_stores_bit_identical(&cfg, &serial_dir, &dist_dir);

    // A second distributed run over the same store is served entirely
    // from it: the coordinator answers from the store and finishes
    // without needing a single worker to connect.
    let (again, _) = distributed_run(&cfg, &dist_dir, 60_000, vec![]);
    assert_eq!(again.results, serial.results);
    assert_eq!(again.executed, 0, "warm store: nothing to execute");
    assert_eq!(again.store_hits, again.cells);

    std::fs::remove_dir_all(&serial_dir).ok();
    std::fs::remove_dir_all(&dist_dir).ok();
}

#[test]
fn killed_worker_cells_are_released_and_completed() {
    let cfg = tiny_config(78);
    let serial_dir = temp_dir("kill-serial");
    let dist_dir = temp_dir("kill-dist");
    let serial = serial_run(&cfg, &serial_dir);

    // `doomed` completes one cell, then vanishes while holding a fresh
    // lease (simulating a kill -9 mid-cell: the connection drops and the
    // unfinished lease is released). `survivor` finishes the study.
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral listener");
    let addr = listener.local_addr().expect("listener addr").to_string();
    let coordinator = Coordinator::new(cfg.clone(), ResultStore::open(&dist_dir).expect("store"))
        .lease_ms(60_000);
    let (dist, doomed, survivor) = std::thread::scope(|scope| {
        let serve = scope.spawn(move || coordinator.serve(&listener).expect("serve"));
        let doomed = softerr::run_worker(
            &addr,
            &WorkerOptions {
                name: "doomed".into(),
                abandon_after: Some(1),
                ..WorkerOptions::default()
            },
        )
        .expect("doomed worker runs until its simulated crash");
        assert!(doomed.abandoned, "the test hook must have fired");
        let survivor = softerr::run_worker(
            &addr,
            &WorkerOptions {
                name: "survivor".into(),
                capacity: 2,
                ..WorkerOptions::default()
            },
        )
        .expect("survivor worker");
        (serve.join().expect("coordinator thread"), doomed, survivor)
    });

    assert_eq!(
        doomed.completed + survivor.completed,
        dist.cells,
        "every cell was executed exactly once despite the crash"
    );
    assert!(
        survivor.completed > 0,
        "the survivor picked up the released cells"
    );
    assert_eq!(dist.executed, dist.cells, "no cell was lost or doubled");
    assert_eq!(serial.results, dist.results);
    assert_stores_bit_identical(&cfg, &serial_dir, &dist_dir);
    // Exactly one file per cell: the crash left neither litter nor dupes.
    assert_eq!(
        std::fs::read_dir(dist_dir.join("cells")).unwrap().count(),
        dist.cells
    );

    std::fs::remove_dir_all(&serial_dir).ok();
    std::fs::remove_dir_all(&dist_dir).ok();
}

#[test]
fn forged_submissions_are_rejected_and_honest_workers_prevail() {
    let cfg = tiny_config(79);
    let dist_dir = temp_dir("forge-dist");
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral listener");
    let addr = listener.local_addr().expect("listener addr").to_string();
    let coordinator = Coordinator::new(cfg.clone(), ResultStore::open(&dist_dir).expect("store"));
    let (dist, honest) = std::thread::scope(|scope| {
        let serve = scope.spawn(move || coordinator.serve(&listener).expect("serve"));

        // A hostile client: greets correctly, then submits a cell the
        // study never planned. The coordinator must refuse it without
        // touching the store.
        let mut stream = TcpStream::connect(&addr).expect("hostile connect");
        write_frame(
            &mut stream,
            &Request::Hello {
                version: PROTOCOL_VERSION,
                worker: "hostile".into(),
            },
        )
        .unwrap();
        let welcome: Response = read_frame(&mut stream).unwrap();
        let key = match &welcome {
            Response::Welcome { config, .. } => CellKey {
                machine: config.machines[0].name.clone(),
                workload: config.workloads[0],
                level: config.levels[0],
            },
            other => panic!("expected Welcome, got {other:?}"),
        };
        let bogus = softerr::CellResult {
            golden_cycles: 1,
            golden_retired: 1,
            code_words: 1,
            campaigns: vec![],
        };
        write_frame(
            &mut stream,
            &Request::Submit {
                lease: 999,
                hash: "ffffffffffffffff".into(),
                key: key.clone(),
                result: bogus.clone(),
            },
        )
        .unwrap();
        match read_frame::<Response>(&mut stream).unwrap() {
            Response::Rejected { reason, .. } => {
                assert!(reason.contains("not a cell"), "unexpected reason: {reason}")
            }
            other => panic!("a forged hash must be Rejected, got {other:?}"),
        }
        // Right hash, wrong key: also refused.
        let machine = &cfg.machines[1];
        let real_hash = cell_config_hash(&cfg, machine, cfg.workloads[0], cfg.levels[0]);
        write_frame(
            &mut stream,
            &Request::Submit {
                lease: 999,
                hash: real_hash,
                key, // names machine 0, but the hash plans machine 1
                result: bogus,
            },
        )
        .unwrap();
        match read_frame::<Response>(&mut stream).unwrap() {
            Response::Rejected { reason, .. } => {
                assert!(
                    reason.contains("key mismatch"),
                    "unexpected reason: {reason}"
                )
            }
            other => panic!("a mis-keyed submit must be Rejected, got {other:?}"),
        }
        write_frame(&mut stream, &Request::Bye).unwrap();
        let _: Response = read_frame(&mut stream).unwrap();
        drop(stream);

        // An honest worker completes the study as if nothing happened.
        let honest = softerr::run_worker(
            &addr,
            &WorkerOptions {
                name: "honest".into(),
                capacity: 2,
                ..WorkerOptions::default()
            },
        )
        .expect("honest worker");
        (serve.join().expect("coordinator thread"), honest)
    });
    assert_eq!(honest.completed, dist.cells);
    assert_eq!(dist.executed, dist.cells);
    // The forgeries never reached the store: one write per real cell.
    assert_eq!(dist.store_writes as usize, dist.cells);
    std::fs::remove_dir_all(&dist_dir).ok();
}
