//! Equivalence net for the `Sampler` / `SamplingPlan` redesign.
//!
//! Three properties, on both paper machines, for arbitrary seeds:
//!
//! 1. **Uniform is the historical path** — a campaign run under the
//!    default uniform plan produces class tallies, per-fault verdicts, and
//!    records bit-identical across 1-, 2-, and 5-worker pools; the drawn
//!    sample is exactly [`UniformSampler::sample`]'s output and a prefix of
//!    any larger sample from the same seed; every record carries weight 1.0
//!    and serializes *without* a `weight` key, so uniform JSONL output is
//!    byte-identical to the pre-redesign format.
//! 2. **Importance agrees with uniform** — on liveness-tracked structures,
//!    the Horvitz–Thompson-reweighted AVF estimate lands within the two
//!    campaigns' combined 99% margins of the uniform estimate.
//! 3. **Weights are pure functions of the golden run** — every importance
//!    record carries the same weight, equal to the sampler's
//!    live-and-demanded population fraction, regardless of thread count.

use proptest::prelude::*;
use softerr::{
    CampaignConfig, Compiler, ImportanceSampler, Injector, MachineConfig, OptLevel, Program,
    Sampler, SamplerKind, SamplingPlan, Scale, Structure, UniformSampler, Workload,
};
use std::sync::OnceLock;

fn machines() -> &'static Vec<(MachineConfig, Program)> {
    static CELL: OnceLock<Vec<(MachineConfig, Program)>> = OnceLock::new();
    CELL.get_or_init(|| {
        MachineConfig::paper_machines()
            .into_iter()
            .map(|m| {
                let program = Compiler::new(m.profile, OptLevel::O1)
                    .compile(&Workload::Qsort.source(Scale::Tiny))
                    .expect("workload compiles")
                    .program;
                (m, program)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn uniform_plan_is_bit_identical_across_pools(
        seed in any::<u64>(),
        s in 0usize..15,
        n in 1u64..60,
    ) {
        let structure = Structure::ALL[s];
        for (machine, program) in machines() {
            let injector = Injector::new(machine, program).expect("golden run");
            // The plan's drawn sample is exactly the raw sampler's output,
            // and a smaller sample is a prefix of a larger one.
            let sample = UniformSampler.sample(&injector, structure, n, seed);
            prop_assert_eq!(&sample, &injector.sample_faults(structure, n, seed));
            let half = UniformSampler.sample(&injector, structure, n / 2, seed);
            prop_assert_eq!(&sample[..half.len()], half.as_slice());
            prop_assert_eq!(UniformSampler.weight(&injector, structure), 1.0);

            let cfg = CampaignConfig {
                plan: SamplingPlan::fixed(n),
                seed,
                ..CampaignConfig::default()
            };
            let base = injector.run(structure, &cfg).records(true).execute();
            for threads in [2usize, 5] {
                let pooled = injector
                    .run(structure, &CampaignConfig { threads, ..cfg })
                    .records(true)
                    .execute();
                prop_assert_eq!(&base.result, &pooled.result);
                prop_assert_eq!(&base.classes, &pooled.classes);
                prop_assert_eq!(&base.records, &pooled.records);
            }
            for record in base.records.as_deref().expect("records were requested") {
                prop_assert_eq!(record.weight, 1.0);
                let json = serde_json::to_string(record).expect("serialize");
                prop_assert!(
                    !json.contains("\"weight\""),
                    "uniform record must serialize without a weight key: {}",
                    json
                );
            }
        }
    }

    /// The reweighted importance estimate must agree with the uniform one
    /// within the two campaigns' combined 99% margins, on both a dense
    /// structure (the register file) and a sparse one (the L1I data array).
    #[test]
    fn importance_estimate_agrees_with_uniform(seed in any::<u64>()) {
        for (machine, program) in machines() {
            let injector = Injector::new(machine, program).expect("golden run");
            for structure in [Structure::RegFile, Structure::L1IData] {
                let uniform_cfg = CampaignConfig {
                    plan: SamplingPlan::adaptive(0.12, 25),
                    seed,
                    ..CampaignConfig::default()
                };
                let importance_cfg = CampaignConfig {
                    plan: uniform_cfg.plan.sampler(SamplerKind::Importance),
                    ..uniform_cfg
                };
                let uniform = injector.run(structure, &uniform_cfg).execute().result;
                let importance = injector.run(structure, &importance_cfg).execute().result;
                let diff = (uniform.avf() - importance.avf()).abs();
                let allowed = uniform.margin_99() + importance.margin_99();
                prop_assert!(
                    diff <= allowed,
                    "{}/{}: importance AVF {:.4} vs uniform {:.4} differ by {:.4} > {:.4} (seed {})",
                    machine.name, structure, importance.avf(), uniform.avf(), diff, allowed, seed
                );
            }
        }
    }

    /// Importance weights depend only on the golden run: every record in a
    /// campaign carries the sampler's population fraction, identically
    /// across thread pools.
    #[test]
    fn importance_weights_are_thread_independent(seed in any::<u64>()) {
        for (machine, program) in machines() {
            let injector = Injector::new(machine, program).expect("golden run");
            let structure = Structure::RegFile;
            let expected = ImportanceSampler.weight(&injector, structure);
            let mut runs = Vec::new();
            for threads in [1usize, 2, 5] {
                let cfg = CampaignConfig {
                    plan: SamplingPlan::fixed(40).sampler(SamplerKind::Importance),
                    seed,
                    threads,
                    ..CampaignConfig::default()
                };
                let out = injector.run(structure, &cfg).records(true).execute();
                prop_assert_eq!(out.result.weight, expected);
                for record in out.records.as_deref().expect("records were requested") {
                    prop_assert_eq!(
                        record.weight, expected,
                        "{}: record weight must equal the sampler weight (seed {})",
                        machine.name, seed
                    );
                }
                runs.push(out);
            }
            for pooled in &runs[1..] {
                prop_assert_eq!(&runs[0].result, &pooled.result);
                prop_assert_eq!(&runs[0].records, &pooled.records);
            }
        }
    }
}
