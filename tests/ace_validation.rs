//! Cross-validation of the static ACE/bit-liveness AVF estimator against
//! fault injection (the ground truth of the study).
//!
//! One golden run with residency tracking must (a) reproduce the O0→O3
//! vulnerability *ordering* that injection measures wherever injection can
//! statistically resolve the difference, and (b) track the injected AVF of
//! each validated structure within `margin_99 + ACE_ABS_TOL`.
//!
//! The tolerances and the structure list are calibrated from the measured
//! sweep recorded in `EXPERIMENTS.md` ("The static layer"). `IqDest` is
//! deliberately excluded from the tracking band: a flipped destination tag
//! reroutes writeback into an unrelated physical register, so injected
//! vulnerability exceeds any liveness-based bound (fault→crash conversion,
//! which the static model documents as out of scope).

use softerr::{
    ace_estimate, CampaignConfig, Compiler, Injector, MachineConfig, OptLevel, SamplingPlan, Scale,
    Structure, Workload,
};

/// Injections per (structure, level) cell. 200 keeps the 99% margin near
/// 0.09 while the whole test stays a few seconds in release builds.
const INJECTIONS: u64 = 200;
const SEED: u64 = 1;

/// Absolute slack on top of the statistical margin for the tracking band.
/// The measured worst case (A15 qsort, `iq.src` at O0) sits near 0.06.
const ACE_ABS_TOL: f64 = 0.08;

/// Structures validated against injection. Caches are skipped (their AVF
/// at tiny scale is within noise of zero on both estimators) and `IqDest`
/// is excluded per the module comment.
const VALIDATED: [Structure; 6] = [
    Structure::RegFile,
    Structure::LoadQueue,
    Structure::StoreQueue,
    Structure::IqSrc,
    Structure::RobPc,
    Structure::RobDest,
];

struct Cell {
    injected: f64,
    margin: f64,
    statik: f64,
}

/// Runs qsort at every level on `cfg`, returning per-level cells for each
/// validated structure: `result[level][structure]`.
fn measure(cfg: &MachineConfig) -> Vec<Vec<Cell>> {
    OptLevel::ALL
        .iter()
        .map(|&level| {
            let program = Compiler::new(cfg.profile, level)
                .compile(&Workload::Qsort.source(Scale::Tiny))
                .expect("qsort must compile")
                .program;
            let injector = Injector::new(cfg, &program).expect("golden run");
            let est = ace_estimate(cfg, &program, 4_000_000_000).expect("ACE golden run");
            VALIDATED
                .iter()
                .map(|&s| {
                    let campaign = injector
                        .run(
                            s,
                            &CampaignConfig {
                                plan: SamplingPlan::fixed(INJECTIONS),
                                seed: SEED,
                                threads: 1,
                                checkpoint: true,
                            },
                        )
                        .execute()
                        .result;
                    Cell {
                        injected: campaign.avf(),
                        margin: campaign.margin_99(),
                        statik: est.avf(s),
                    }
                })
                .collect()
        })
        .collect()
}

#[test]
fn static_ace_cross_validates_against_injection() {
    let mut resolvable_pairs = 0usize;
    for cfg in MachineConfig::paper_machines() {
        let cells = measure(&cfg);

        // (b) tracking band: static within margin + slack of injected.
        for (li, level) in OptLevel::ALL.iter().enumerate() {
            for (si, s) in VALIDATED.iter().enumerate() {
                let c = &cells[li][si];
                let delta = (c.statik - c.injected).abs();
                assert!(
                    delta <= c.margin + ACE_ABS_TOL,
                    "{} {s} {level}: static {:.3} vs injected {:.3} ± {:.3} (Δ {:.3})",
                    cfg.name,
                    c.statik,
                    c.injected,
                    c.margin,
                    delta,
                );
            }
        }

        // (a) ordering: wherever injection resolves an O0-vs-optimized
        // difference beyond combined 99% margins, the static estimator
        // must rank the two levels the same way.
        let o0 = 0usize;
        for opt in 1..OptLevel::ALL.len() {
            for (si, s) in VALIDATED.iter().enumerate() {
                let (a, b) = (&cells[o0][si], &cells[opt][si]);
                let inj_delta = a.injected - b.injected;
                if inj_delta.abs() <= a.margin + b.margin {
                    continue; // injection cannot resolve the pair
                }
                resolvable_pairs += 1;
                let static_delta = a.statik - b.statik;
                assert!(
                    inj_delta.signum() == static_delta.signum(),
                    "{} {s}: injection ranks O0 {} {} ({:.3} vs {:.3}) but static \
                     disagrees ({:.3} vs {:.3})",
                    cfg.name,
                    if inj_delta > 0.0 { "above" } else { "below" },
                    OptLevel::ALL[opt],
                    a.injected,
                    b.injected,
                    a.statik,
                    b.statik,
                );
            }
        }
    }
    // The check above must not be vacuous: at tiny scale the queue/ROB
    // utilization drop from O0 to the optimized levels is large enough for
    // injection to resolve on at least one machine.
    assert!(
        resolvable_pairs > 0,
        "no O0-vs-optimized pair was statistically resolvable; increase INJECTIONS"
    );
}
