//! Property test: the golden-prefix checkpointing engine must classify every
//! fault exactly as the fresh from-cycle-0 engine does, on both paper
//! machines, for arbitrary (structure, bit, cycle) faults — including cycles
//! past the end of the program and batches that put several forked children
//! in flight at once.

use proptest::prelude::*;
use softerr::{
    CampaignConfig, Compiler, FaultSpec, Injector, MachineConfig, OptLevel, Program, Structure,
};
use std::sync::OnceLock;

/// Small mixed workload: ALU loops, memory traffic, and data-dependent
/// branches, so every structure class sees live state.
const SOURCE: &str = "
    int tab[24];
    void main() {
        for (int i = 0; i < 24; i = i + 1) tab[i] = i * 5 - 7;
        int acc = 0;
        for (int i = 0; i < 24; i = i + 1) {
            if (tab[i] > 20) acc = acc + tab[i];
            else acc = acc - 1;
        }
        out(acc);
    }";

fn machines() -> &'static Vec<(MachineConfig, Program)> {
    static CELL: OnceLock<Vec<(MachineConfig, Program)>> = OnceLock::new();
    CELL.get_or_init(|| {
        MachineConfig::paper_machines()
            .into_iter()
            .map(|m| {
                let program = Compiler::new(m.profile, OptLevel::O2)
                    .compile(SOURCE)
                    .expect("workload compiles")
                    .program;
                (m, program)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    #[test]
    fn checkpointed_classification_matches_fresh(
        raw in proptest::collection::vec((0usize..15, any::<u64>(), any::<u64>()), 1..6),
    ) {
        for (machine, program) in machines() {
            let injector = Injector::new(machine, program).expect("golden run");
            let cycles = injector.golden().cycles;
            let faults: Vec<FaultSpec> = raw
                .iter()
                .map(|&(s, bit, cycle)| {
                    let structure = Structure::ALL[s];
                    FaultSpec {
                        structure,
                        bit: bit % injector.bit_count(structure),
                        // Bias into the live range but keep past-the-end
                        // cycles reachable (fresh path masks those).
                        cycle: cycle % (cycles + cycles / 4 + 1),
                    }
                })
                .collect();
            let fresh_cfg = CampaignConfig { checkpoint: false, ..CampaignConfig::default() };
            let ckpt_cfg = CampaignConfig { checkpoint: true, ..CampaignConfig::default() };
            // The nominal structure only labels the result; the explicit
            // fault list drives classification.
            let s = faults[0].structure;
            let fresh = injector.run(s, &fresh_cfg).faults(&faults).execute().classes;
            let ckpt = injector.run(s, &ckpt_cfg).faults(&faults).execute().classes;
            prop_assert_eq!(
                &fresh, &ckpt,
                "divergence on {} for faults {:?}", machine.name, faults
            );
        }
    }
}
