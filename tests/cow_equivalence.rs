//! Property and directed tests for copy-on-write simulator forking.
//!
//! The convoy engine now forks children with [`Sim::fork`] — chunked,
//! `Arc`-shared cache arrays and register-file value bank — instead of deep
//! clones. The properties here prove the COW path is invisible in results
//! (classes, tallies, and fault records are a pure function of the fault,
//! regardless of fork sharing, convoy composition, or pruning), and the
//! directed tests pin the two behaviors the refactor exists to deliver:
//! O(1) fork cost, and early convergence classification for children whose
//! transient extra miss previously kept the old stamp-exact cache equality
//! false forever.

use proptest::prelude::*;
use softerr::{
    CampaignConfig, Compiler, FaultClass, Injector, MachineConfig, OptLevel, Program, PruneMode,
    SamplingPlan, Sim, SimOutcome, Structure,
};
use std::sync::OnceLock;

/// Small mixed workload: ALU loops, memory traffic, and data-dependent
/// branches, so every structure class sees live state.
const SOURCE: &str = "
    int tab[24];
    void main() {
        for (int i = 0; i < 24; i = i + 1) tab[i] = i * 5 - 7;
        int acc = 0;
        for (int i = 0; i < 24; i = i + 1) {
            if (tab[i] > 20) acc = acc + tab[i];
            else acc = acc - 1;
        }
        out(acc);
    }";

/// Workload for the re-convergence test. Two properties matter: the
/// multi-cycle divider keeps the back end busy, so the transient fetch
/// bubble from one extra I-cache miss is absorbed instead of rippling to
/// the halt cycle; and the data-dependent branch mispredicts occasionally,
/// whose squash recovery rebuilds the rename free list from first
/// principles in both machines — re-canonicalizing the allocation rotation
/// the bubble phase-shifted, which is what lets the child's state close the
/// last gap with the golden run.
const DIV_SOURCE: &str = "
    int tab[32];
    void main() {
        for (int i = 0; i < 32; i = i + 1) tab[i] = (i * 7919) / (i + 3);
        int acc = 1;
        for (int i = 1; i < 96; i = i + 1) {
            acc = acc + (tab[i % 32] / i);
            if (acc > 600) acc = acc - 599;
        }
        out(acc);
    }";

fn machines() -> &'static Vec<(MachineConfig, Program)> {
    static CELL: OnceLock<Vec<(MachineConfig, Program)>> = OnceLock::new();
    CELL.get_or_init(|| {
        MachineConfig::paper_machines()
            .into_iter()
            .map(|m| {
                let program = Compiler::new(m.profile, OptLevel::O2)
                    .compile(SOURCE)
                    .expect("workload compiles")
                    .program;
                (m, program)
            })
            .collect()
    })
}

fn div_machines() -> &'static Vec<(MachineConfig, Program)> {
    static CELL: OnceLock<Vec<(MachineConfig, Program)>> = OnceLock::new();
    CELL.get_or_init(|| {
        MachineConfig::paper_machines()
            .into_iter()
            .map(|m| {
                let program = Compiler::new(m.profile, OptLevel::O2)
                    .compile(DIV_SOURCE)
                    .expect("workload compiles")
                    .program;
                (m, program)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// COW-forked convoy campaigns classify every fault exactly as the
    /// fresh from-cycle-0 engine, over random seeds, all 15 structures,
    /// both paper machines, prune on and off.
    #[test]
    fn cow_convoy_matches_fresh(
        seed in any::<u64>(),
        s in 0usize..15,
        prune_on in any::<bool>(),
    ) {
        let structure = Structure::ALL[s];
        for (machine, program) in machines() {
            let injector = Injector::new(machine, program).expect("golden run");
            let fresh_cfg = CampaignConfig {
                plan: SamplingPlan::fixed(40),
                seed,
                checkpoint: false,
                ..CampaignConfig::default()
            };
            let cow_cfg = CampaignConfig {
                checkpoint: true,
                plan: fresh_cfg
                    .plan
                    .prune(if prune_on { PruneMode::On } else { PruneMode::Off }),
                ..fresh_cfg
            };
            let fresh = injector.run(structure, &fresh_cfg).execute();
            let cow = injector.run(structure, &cow_cfg).execute();
            prop_assert_eq!(
                &fresh.result, &cow.result,
                "{}/{}: COW convoy changed the class tallies (seed {})",
                machine.name, structure, seed
            );
            prop_assert_eq!(
                &fresh.classes, &cow.classes,
                "{}/{}: COW convoy changed a per-fault verdict (seed {})",
                machine.name, structure, seed
            );
        }
    }

    /// Fault records must be a pure function of the fault itself: changing
    /// the convoy composition (thread count) and the pruning mode changes
    /// which children share which chunks with which golden epoch, and none
    /// of it may show through to the record stream.
    #[test]
    fn cow_records_are_pure_functions_of_the_fault(
        seed in any::<u64>(),
        s in 0usize..15,
    ) {
        let structure = Structure::ALL[s];
        for (machine, program) in machines() {
            let injector = Injector::new(machine, program).expect("golden run");
            let base =
                CampaignConfig { plan: SamplingPlan::fixed(40), seed, ..CampaignConfig::default() };
            let wide =
                CampaignConfig { threads: 4, plan: base.plan.prune(PruneMode::On), ..base };
            let a = injector.run(structure, &base).records(true).execute();
            let b = injector.run(structure, &wide).records(true).execute();
            let ra = a.records.expect("records were requested");
            let rb = b.records.expect("records were requested");
            prop_assert_eq!(ra.len(), rb.len());
            for (x, y) in ra.iter().zip(&rb) {
                if y.class != FaultClass::Masked {
                    prop_assert_eq!(
                        x, y,
                        "{}/{}: non-masked record depends on convoy shape (seed {})",
                        machine.name, structure, seed
                    );
                }
            }
        }
    }
}

/// A fork shares every storage chunk with its parent — O(1) cost — and each
/// post-fork write unshares exactly one chunk.
#[test]
fn fork_is_o1_and_unshares_per_write() {
    for (machine, program) in machines() {
        let mut golden = Sim::new(machine, program);
        assert!(
            golden.run_to_cycle(500).is_none(),
            "workload outlives 500 cycles"
        );
        let mut child = golden.fork();
        assert!(child.state_eq(&golden), "fork starts state-equal");
        for (ours, theirs) in [
            (&child.mem.l1i, &golden.mem.l1i),
            (&child.mem.l1d, &golden.mem.l1d),
            (&child.mem.l2, &golden.mem.l2),
        ] {
            assert_eq!(
                ours.shared_state_chunks(theirs),
                ours.state_chunk_count(),
                "{}: fork must share every cache chunk",
                machine.name
            );
        }
        assert_eq!(
            child.rf.shared_value_chunks(&golden.rf),
            child.rf.value_chunk_count(),
            "{}: fork must share the whole RF value bank",
            machine.name
        );
        // One data-bit flip materializes exactly one chunk of one array.
        child.flip_bit(Structure::L1DData, 0);
        assert_eq!(
            child.mem.l1d.shared_state_chunks(&golden.mem.l1d),
            child.mem.l1d.state_chunk_count() - 1,
            "{}: one write must unshare exactly one chunk",
            machine.name
        );
        child.flip_bit(Structure::RegFile, 0);
        assert_eq!(
            child.rf.shared_value_chunks(&golden.rf),
            child.rf.value_chunk_count() - 1,
            "{}: one RF write must unshare exactly one value chunk",
            machine.name
        );
        // The untouched hierarchy levels still share everything.
        assert_eq!(
            child.mem.l2.shared_state_chunks(&golden.mem.l2),
            child.mem.l2.state_chunk_count(),
            "{}: untouched L2 stays fully shared",
            machine.name
        );
    }
}

/// The bug the relative-LRU equality fixes, end to end: a child whose fault
/// costs it one transient extra I-cache miss re-converges to the golden
/// state and is classified by convergence (Masked, mid-run) instead of
/// simulating to completion. Under the old stamp-exact comparison the extra
/// miss advanced `use_counter` past the golden value forever, so `state_eq`
/// could never return true again.
#[test]
fn transient_extra_miss_child_is_classified_by_convergence() {
    for (machine, program) in div_machines() {
        let total = {
            let mut probe = Sim::new(machine, program);
            match probe.run(200_000) {
                SimOutcome::Halted { cycles, .. } => cycles,
                other => panic!("{}: workload must halt, got {other:?}", machine.name),
            }
        };
        let mut converged = false;
        'search: for start in [total / 4, total / 2, (3 * total) / 4] {
            let mut golden = Sim::new(machine, program);
            assert!(golden.run_to_cycle(start).is_none());
            let per_line = golden.mem.l1i.tag_width() as u64 + 2;
            let lines = golden.mem.l1i.geometry().lines();
            for line in 0..lines {
                if !golden.mem.l1i.is_valid(line) {
                    continue;
                }
                // Knock the line's valid bit off: the next fetch of it takes
                // one extra miss, refills the identical contents, and leaves
                // only a recency-order and timing transient behind.
                let mut runner = golden.fork();
                let mut child = golden.fork();
                child.flip_bit(
                    Structure::L1ITag,
                    line as u64 * per_line + golden.mem.l1i.tag_width() as u64,
                );
                while runner.cycle() < total - 1 {
                    let stop = (runner.cycle() + 8).min(total - 1);
                    if runner.run_to_cycle(stop).is_some() || child.run_to_cycle(stop).is_some() {
                        break; // someone halted early: not this candidate
                    }
                    let extra_miss = child.stats().l1i.1 > runner.stats().l1i.1;
                    if extra_miss && child.state_eq(&runner) {
                        // Converged mid-run with the extra miss on record:
                        // the convoy classifies this child on the spot.
                        assert_eq!(
                            child.output(),
                            runner.output(),
                            "{}: clean I-side fault must be Masked",
                            machine.name
                        );
                        assert!(
                            runner.cycle() < total - 1,
                            "{}: convergence must beat running to completion",
                            machine.name
                        );
                        converged = true;
                        break 'search;
                    }
                }
            }
        }
        assert!(
            converged,
            "{}: no transiently-missing child re-converged — the relative-LRU \
             equality fix is not observable",
            machine.name
        );
    }
}

/// Golden-record pin for the forensics contract: the component names
/// `Sim::state_divergence` can report, in probe order. PR 3's persisted
/// `DivergenceSite.component` values depend on these strings.
#[test]
fn divergence_component_names_are_pinned() {
    const PINNED: [&str; 19] = [
        "cycle",
        "fetch.pc",
        "fetch.seq",
        "fetch.stall",
        "exec.divider",
        "exec.in_flight",
        "exec.wb_ready",
        "rf",
        "rob",
        "iq",
        "lq",
        "sq",
        "decode_q",
        "uops",
        "bpred",
        "mem.l1i",
        "mem.l1d",
        "mem.l2",
        "mem",
    ];
    assert_eq!(Sim::DIVERGENCE_COMPONENTS, PINNED);

    // Live probes: freshly corrupted structures report the pinned names.
    let (machine, program) = &machines()[0];
    let mut golden = Sim::new(machine, program);
    assert!(golden.run_to_cycle(300).is_none());
    let mut child = golden.fork();
    child.flip_bit(Structure::L1DData, 0);
    assert_eq!(child.state_divergence(&golden), Some("mem.l1d"));
    let mut child = golden.fork();
    child.flip_bit(Structure::L1ITag, 0);
    assert_eq!(child.state_divergence(&golden), Some("mem.l1i"));
    let mut child = golden.fork();
    assert!(child.run_to_cycle(301).is_none());
    assert_eq!(child.state_divergence(&golden), Some("cycle"));
}
