//! The `verify-ir` sweep: every workload × every optimization level ×
//! both target profiles compiles with the IR verifier re-checking the
//! module after **every** pass application, plus the post-regalloc
//! allocation check.
//!
//! This is the correctness net over the 13 optimization passes that CI
//! runs with the `verify-ir` feature enabled (`just lint-ir`): a pass that
//! breaks an invariant (use before def, dangling branch target, clobbered
//! live range, ...) fails here with a diagnostic naming the pass, the
//! function, and the block.
//!
//! The same sweep hosts the dead-computation lint check: `cc.lint`
//! warnings (defs and stores the static bit-demand analysis proves fully
//! dead after O2/O3) are captured per compile and asserted to fire only at
//! the levels the lint is armed for.

use softerr::telemetry::{install_sink, reset_sink, CaptureSink, Event, Sink};
use softerr::{Compiler, OptLevel, Profile, Scale, Workload};
use std::sync::{Arc, Mutex};

/// The telemetry sink is process-global, so the lint-capture test must not
/// overlap with the other compiles in this binary: both tests serialize on
/// this lock.
static SERIAL: Mutex<()> = Mutex::new(());

#[test]
fn verifier_accepts_all_workloads_at_all_levels() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    for profile in [Profile::A32, Profile::A64] {
        for workload in Workload::ALL {
            for scale in [Scale::Tiny, Scale::Small] {
                let src = workload.source(scale);
                for level in OptLevel::ALL {
                    Compiler::new(profile, level)
                        .with_verify(true)
                        .compile(&src)
                        .unwrap_or_else(|e| {
                            panic!("{}/{profile}/{level}/{scale:?}: {e}", workload.name())
                        });
                }
            }
        }
    }
}

/// Forwards to a shared capture so the test body can read what the
/// process-global sink saw.
struct SharedCapture(Arc<CaptureSink>);

impl Sink for SharedCapture {
    fn emit(&self, event: &Event) {
        self.0.emit(event);
    }
}

/// The dead-computation lint: `cc.lint` warnings fire at O2/O3 (where a
/// surviving dead def or store means a pass left work on the table) and
/// never below (O0/O1 deliberately keep dead code, so linting there would
/// be all noise). Several shift/mask-heavy workloads are known to carry
/// dead high-half computations through the O2 pipeline, so the sweep also
/// pins down that the lint actually fires somewhere.
#[test]
fn dead_computation_lint_fires_at_o2_and_above_only() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let capture = Arc::new(CaptureSink::new());
    install_sink(Box::new(SharedCapture(Arc::clone(&capture))));
    let mut fired_high = 0usize;
    for profile in [Profile::A32, Profile::A64] {
        for workload in Workload::ALL {
            let src = workload.source(Scale::Tiny);
            for level in OptLevel::ALL {
                let before = capture.events().len();
                Compiler::new(profile, level)
                    .compile(&src)
                    .unwrap_or_else(|e| panic!("{}/{profile}/{level}: {e}", workload.name()));
                let lints: Vec<Event> = capture.events()[before..]
                    .iter()
                    .filter(|e| e.target == "cc.lint")
                    .cloned()
                    .collect();
                if level < OptLevel::O2 {
                    assert!(
                        lints.is_empty(),
                        "{}/{profile}/{level}: the dead-computation lint must stay \
                         silent below O2, got: {}",
                        workload.name(),
                        lints[0].message
                    );
                } else {
                    fired_high += lints.len();
                    for lint in &lints {
                        assert!(
                            lint.message.contains("dead computation survives")
                                || lint.message.contains("dead store survives"),
                            "unexpected cc.lint message: {}",
                            lint.message
                        );
                    }
                }
            }
        }
    }
    reset_sink();
    assert!(
        fired_high > 0,
        "no workload tripped the dead-computation lint at O2/O3 — the lint \
         sweep is vacuous"
    );
}
