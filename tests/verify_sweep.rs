//! The `verify-ir` sweep: every workload × every optimization level ×
//! both target profiles compiles with the IR verifier re-checking the
//! module after **every** pass application, plus the post-regalloc
//! allocation check.
//!
//! This is the correctness net over the 13 optimization passes that CI
//! runs with the `verify-ir` feature enabled (`just lint-ir`): a pass that
//! breaks an invariant (use before def, dangling branch target, clobbered
//! live range, ...) fails here with a diagnostic naming the pass, the
//! function, and the block.

use softerr::{Compiler, OptLevel, Profile, Scale, Workload};

#[test]
fn verifier_accepts_all_workloads_at_all_levels() {
    for profile in [Profile::A32, Profile::A64] {
        for workload in Workload::ALL {
            for scale in [Scale::Tiny, Scale::Small] {
                let src = workload.source(scale);
                for level in OptLevel::ALL {
                    Compiler::new(profile, level)
                        .with_verify(true)
                        .compile(&src)
                        .unwrap_or_else(|e| {
                            panic!("{}/{profile}/{level}/{scale:?}: {e}", workload.name())
                        });
                }
            }
        }
    }
}
