//! Span tracing must be purely observational.
//!
//! 1. **Trace-on == trace-off, bit-identical.** A recorded campaign run
//!    with tracing armed must produce exactly the classes, per-fault
//!    records, and aggregate counts of an untraced run, on both paper
//!    machines — and a traced study must persist byte-identical result
//!    store files. Recording wall-clock spans reads the clock and a
//!    per-thread ring buffer; it must never touch engine state.
//! 2. **Well-nested per thread.** Under the work-stealing cell pool (2
//!    and 5 workers, property-tested over seeds) every thread's spans
//!    form a proper nesting: any two either nest (with strictly greater
//!    depth inside) or are disjoint in time. The profiler's self-time
//!    arithmetic ([`softerr::profile::stage_table`]) is only sound if
//!    this holds.
//!
//! Tracing is process-global state, so every test (and every proptest
//! case) holds one mutex while armed.

use proptest::prelude::*;
use softerr::{
    telemetry, CampaignConfig, Compiler, Injector, MachineConfig, OptLevel, Orchestrator,
    ResultStore, SamplingPlan, Structure, StudyConfig, Trace, Workload,
};
use std::sync::Mutex;

/// Serializes access to the process-global tracing switch.
static TRACING: Mutex<()> = Mutex::new(());

/// Runs `f` with tracing armed and returns its result plus the trace.
fn with_tracing<T>(f: impl FnOnce() -> T) -> (T, Trace) {
    let _guard = TRACING.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::set_tracing(true);
    let value = f();
    let trace = telemetry::take_trace();
    (value, trace)
}

#[test]
fn traced_campaigns_are_bit_identical_to_untraced_on_both_machines() {
    for machine in MachineConfig::paper_machines() {
        let compiled = Compiler::new(machine.profile, OptLevel::O1)
            .compile(&Workload::Qsort.source(softerr::Scale::Tiny))
            .expect("compile");
        let injector = Injector::new(&machine, &compiled.program).expect("golden");
        let cfg = CampaignConfig {
            plan: SamplingPlan::fixed(30),
            seed: 9,
            threads: 2,
            checkpoint: true,
        };
        let run = || {
            injector
                .run(Structure::RegFile, &cfg)
                .records(true)
                .execute()
        };
        let off = {
            let _guard = TRACING.lock().unwrap_or_else(|e| e.into_inner());
            assert!(!telemetry::tracing_enabled(), "stray tracing left armed");
            run()
        };
        let (on, trace) = with_tracing(run);
        assert!(
            !trace.is_empty(),
            "tracing was armed, spans must have been recorded"
        );
        assert_eq!(
            off.result, on.result,
            "aggregate classes diverged under tracing on {}",
            machine.name
        );
        assert_eq!(
            off.records, on.records,
            "per-fault records diverged under tracing on {}",
            machine.name
        );
    }
}

#[test]
fn traced_studies_persist_byte_identical_store_files() {
    let config = StudyConfig {
        workloads: vec![Workload::Qsort],
        levels: vec![OptLevel::O0, OptLevel::O2],
        structures: vec![Structure::RegFile, Structure::L1DData],
        plan: SamplingPlan::fixed(6),
        seed: 23,
        ..StudyConfig::default()
    };
    let dir = |tag: &str| {
        let d = std::env::temp_dir().join(format!("softerr-trace-eq-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    };
    let run_into = |root: &std::path::Path| {
        Orchestrator::new(config.clone())
            .cell_workers(2)
            .store(ResultStore::open(root).expect("store opens"))
            .run()
            .expect("study")
    };
    let (off_dir, on_dir) = (dir("off"), dir("on"));
    let off = {
        let _guard = TRACING.lock().unwrap_or_else(|e| e.into_inner());
        run_into(&off_dir)
    };
    let (on, _trace) = with_tracing(|| run_into(&on_dir));
    assert_eq!(off, on, "study results diverged under tracing");
    // The stores must hold the same cell files with the same bytes: the
    // hash keys ignore tracing, and the payloads are tracing-independent.
    let cells = |root: &std::path::Path| -> Vec<(String, Vec<u8>)> {
        let mut files: Vec<_> = std::fs::read_dir(root.join("cells"))
            .expect("cells dir")
            .map(|e| {
                let e = e.expect("dir entry");
                (
                    e.file_name().to_string_lossy().into_owned(),
                    std::fs::read(e.path()).expect("cell file"),
                )
            })
            .collect();
        files.sort();
        files
    };
    assert_eq!(
        cells(&off_dir),
        cells(&on_dir),
        "store files diverged under tracing"
    );
    std::fs::remove_dir_all(&off_dir).ok();
    std::fs::remove_dir_all(&on_dir).ok();
}

/// Any two spans on one thread must nest (inner strictly deeper) or be
/// disjoint; a partial overlap means a guard escaped its scope.
fn assert_well_nested(trace: &Trace) {
    let mut tids: Vec<u32> = trace.spans.iter().map(|s| s.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in tids {
        let mut spans: Vec<_> = trace.spans.iter().filter(|s| s.tid == tid).collect();
        spans.sort_by_key(|s| (s.start_ns, std::cmp::Reverse(s.dur_ns)));
        for (i, outer) in spans.iter().enumerate() {
            for inner in &spans[i + 1..] {
                if inner.start_ns >= outer.end_ns() {
                    continue; // disjoint
                }
                assert!(
                    inner.end_ns() <= outer.end_ns(),
                    "spans overlap without nesting on tid {tid}: \
                     {} [{}, {}) vs {} [{}, {})",
                    outer.name,
                    outer.start_ns,
                    outer.end_ns(),
                    inner.name,
                    inner.start_ns,
                    inner.end_ns()
                );
                assert!(
                    inner.depth > outer.depth,
                    "nested span {} (depth {}) not deeper than {} (depth {}) on tid {tid}",
                    inner.name,
                    inner.depth,
                    outer.name,
                    outer.depth
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]
    #[test]
    fn spans_stay_well_nested_under_the_work_stealing_pool(seed in any::<u64>()) {
        let config = StudyConfig {
            workloads: vec![Workload::Qsort],
            levels: vec![OptLevel::O0, OptLevel::O2],
            structures: vec![Structure::RegFile, Structure::IqSrc],
            plan: SamplingPlan::fixed(6),
            seed,
            threads: 2,
            ..StudyConfig::default()
        };
        for workers in [2usize, 5] {
            let (result, trace) = with_tracing(|| {
                Orchestrator::new(config.clone())
                    .cell_workers(workers)
                    .run()
                    .expect("study")
            });
            prop_assert!(!result.cells.is_empty());
            prop_assert!(!trace.is_empty(), "study must have produced spans");
            assert_well_nested(&trace);
        }
    }
}
