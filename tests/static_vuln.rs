//! Soundness net for the static bit-demand pruner.
//!
//! Two properties, on both paper machines, for arbitrary seeds:
//!
//! 1. **Invisibility** — a campaign with `prune_static: On` (alone or
//!    composed with liveness pruning) produces class tallies and per-fault
//!    records bit-identical to the unpruned campaign. Pruning is an
//!    optimization, never an approximation.
//! 2. **Soundness under direct injection** — every fault the static
//!    analysis claims masked, when actually simulated, classifies as
//!    `Masked`: never SDC, never Assert, never a latency change. This is
//!    the end-to-end check that the IR-level demand proof survives
//!    instruction selection, register allocation, and out-of-order
//!    execution.
//!
//! A deterministic companion pins down that the property is not vacuous:
//! RegFile campaigns must actually attribute prunes to the static stage.

use proptest::prelude::*;
use softerr::{
    CampaignConfig, Compiler, FaultClass, Injector, MachineConfig, OptLevel, Program, PruneMode,
    SamplingPlan, Structure,
};
use std::sync::OnceLock;

/// Mixed workload with partial-width arithmetic (`&` masks and shifts on
/// `u32` values) so the demand analysis has dead bits to find — an LCG
/// whose products feed 8-bit extractions — plus control flow and memory
/// traffic so every structure class sees live state. At O2 this compiles
/// with a double-digit statically-masked bit fraction on both profiles.
const SOURCE: &str = "
    u32 buf[16];
    void main() {
        u32 s = 12345;
        for (int i = 0; i < 16; i = i + 1) {
            s = s * 1103515245 + 12345;
            buf[i] = (s >> 16) & 255;
        }
        u32 acc = 0;
        for (int i = 0; i < 16; i = i + 1) {
            u32 lo = buf[i] & 15;
            u32 hi = (buf[i] >> 4) & 3;
            if (lo > hi) acc = acc + lo;
            else acc = acc + hi;
        }
        out(acc & 1023);
    }";

fn machines() -> &'static Vec<(MachineConfig, Program)> {
    static CELL: OnceLock<Vec<(MachineConfig, Program)>> = OnceLock::new();
    CELL.get_or_init(|| {
        MachineConfig::paper_machines()
            .into_iter()
            .map(|m| {
                let program = Compiler::new(m.profile, OptLevel::O2)
                    .compile(SOURCE)
                    .expect("workload compiles")
                    .program;
                (m, program)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    #[test]
    fn static_pruning_is_bit_identical_to_unpruned(
        seed in any::<u64>(),
        s in 0usize..15,
    ) {
        let structure = Structure::ALL[s];
        for (machine, program) in machines() {
            let injector = Injector::new(machine, program).expect("golden run");
            let off =
                CampaignConfig { plan: SamplingPlan::fixed(40), seed, ..CampaignConfig::default() };
            let static_only = CampaignConfig { plan: off.plan.prune_static(PruneMode::On), ..off };
            let composed = CampaignConfig {
                plan: off.plan.prune(PruneMode::On).prune_static(PruneMode::On),
                ..off
            };
            let full = injector.run(structure, &off).records(true).execute();
            for cfg in [&static_only, &composed] {
                let pruned = injector.run(structure, cfg).records(true).execute();
                prop_assert_eq!(
                    &full.result, &pruned.result,
                    "{}/{}: static pruning changed the class tallies (seed {})",
                    machine.name, structure, seed
                );
                prop_assert_eq!(
                    &full.classes, &pruned.classes,
                    "{}/{}: static pruning changed a per-fault verdict (seed {})",
                    machine.name, structure, seed
                );
                let full_recs = full.records.as_deref().expect("records were requested");
                let pruned_recs = pruned.records.as_deref().expect("records were requested");
                prop_assert_eq!(full_recs.len(), pruned_recs.len());
                for (a, b) in full_recs.iter().zip(pruned_recs) {
                    prop_assert!(
                        !(b.pruned && b.pruned_static),
                        "a fault may be attributed to at most one prune stage"
                    );
                    if b.class != FaultClass::Masked {
                        prop_assert_eq!(
                            a, b,
                            "{}/{}: non-masked record differs under static pruning (seed {})",
                            machine.name, structure, seed
                        );
                    }
                }
            }
        }
    }

    /// Direct-injection soundness: every fault the composed pruner claims
    /// masked really simulates as `Masked`. Re-injects each statically
    /// attributed fault through the raw `inject` path (no pruner in the
    /// loop at all).
    #[test]
    fn statically_pruned_faults_never_sdc_or_assert(seed in any::<u64>()) {
        for (machine, program) in machines() {
            let injector = Injector::new(machine, program).expect("golden run");
            let cfg = CampaignConfig {
                plan: SamplingPlan::fixed(400)
                    .prune(PruneMode::On)
                    .prune_static(PruneMode::On),
                seed,
                ..CampaignConfig::default()
            };
            let out = injector
                .run(Structure::RegFile, &cfg)
                .records(true)
                .execute();
            for r in out.records.as_deref().expect("records were requested") {
                if !r.pruned_static {
                    continue;
                }
                let class = injector.inject(r.spec);
                prop_assert_eq!(
                    class, FaultClass::Masked,
                    "{}: statically-masked fault {:?} simulated as {} (seed {})",
                    machine.name, r.spec, class, seed
                );
            }
        }
    }
}

/// Non-vacuousness guard: with liveness pruning off, the static stage must
/// claim RegFile prunes on both paper machines (it subsumes liveness), and
/// in composed mode it must still find faults the liveness pruner missed —
/// otherwise the properties above never exercise the static path. The
/// composed increment is rare per sample (a fault must land *inside* a
/// live window, in a bit every covering writeback provably never demands),
/// so it is summed over both machines and several seeds at a sample size
/// where the expected count is well into double digits.
#[test]
fn static_pruner_actually_fires() {
    let mut composed_uplift = 0usize;
    for (machine, program) in machines() {
        let injector = Injector::new(machine, program).expect("golden run");
        let static_only = CampaignConfig {
            plan: SamplingPlan::fixed(400).prune_static(PruneMode::On),
            seed: 7,
            ..CampaignConfig::default()
        };
        let out = injector
            .run(Structure::RegFile, &static_only)
            .records(true)
            .execute();
        let n = out
            .records
            .as_deref()
            .expect("records were requested")
            .iter()
            .filter(|r| r.pruned_static)
            .count();
        assert!(
            n > 0,
            "{}: static-only pruning never fired on the RegFile — the soundness \
             properties are vacuous",
            machine.name
        );
        for seed in [7u64, 8, 9] {
            let composed = CampaignConfig {
                plan: SamplingPlan::fixed(2000)
                    .prune(PruneMode::On)
                    .prune_static(PruneMode::On),
                seed,
                ..CampaignConfig::default()
            };
            let out = injector
                .run(Structure::RegFile, &composed)
                .records(true)
                .execute();
            composed_uplift += out
                .records
                .as_deref()
                .expect("records were requested")
                .iter()
                .filter(|r| r.pruned_static)
                .count();
        }
    }
    assert!(
        composed_uplift > 0,
        "static masks never pruned a fault the liveness pruner missed on either \
         machine — composition adds nothing at this sample size"
    );
}
