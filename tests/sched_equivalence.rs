//! Scheduling determinism and resumability of the sweep orchestrator.
//!
//! 1. Cell-parallel execution must be **bit-identical** to serial
//!    execution — same cells, same order, same counts — on both paper
//!    machines, for arbitrary seeds (property-tested). Campaign RNG
//!    streams depend only on (seed, structure), cells share no mutable
//!    state, and results land in plan-order slots, so worker count and
//!    completion order must be unobservable in the results.
//! 2. A budgeted sweep that stops early ([`StudyError::Incomplete`]) must
//!    resume on re-run: cells persisted before the interruption are served
//!    from the result store (hit counters prove they did not re-execute),
//!    and the final results equal an uninterrupted run's.

use proptest::prelude::*;
use softerr::{
    OptLevel, Orchestrator, ResultStore, SamplingPlan, Structure, StudyConfig, StudyError, Workload,
};

/// A grid small enough to property-test: both paper machines, one
/// workload, two levels, three contrasting structures.
fn small_config(seed: u64) -> StudyConfig {
    StudyConfig {
        workloads: vec![Workload::Qsort],
        levels: vec![OptLevel::O0, OptLevel::O2],
        structures: vec![Structure::RegFile, Structure::IqSrc, Structure::L1DData],
        plan: SamplingPlan::fixed(8),
        seed,
        ..StudyConfig::default()
    }
}

fn temp_store(tag: &str) -> ResultStore {
    let dir = std::env::temp_dir().join(format!("softerr-sched-test-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    ResultStore::open(dir).expect("store opens")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn parallel_study_is_bit_identical_to_serial(seed in any::<u64>()) {
        let serial = Orchestrator::new(small_config(seed))
            .run()
            .expect("serial study");
        for workers in [2usize, 5] {
            let parallel = Orchestrator::new(small_config(seed))
                .cell_workers(workers)
                .run()
                .expect("parallel study");
            prop_assert_eq!(
                &serial,
                &parallel,
                "{} cell workers diverged from serial at seed {}",
                workers,
                seed
            );
        }
    }
}

#[test]
fn budgeted_sweep_resumes_without_reexecuting_completed_cells() {
    let cfg = small_config(0xC0FFEE);
    let total = cfg.machines.len() * cfg.workloads.len() * cfg.levels.len();
    let uninterrupted = Orchestrator::new(cfg.clone()).run().expect("baseline");

    // First invocation: budget covers only part of the grid, so the sweep
    // stops early — but everything it measured is already on disk.
    let store = temp_store("resume");
    let budget = 1;
    let first = Orchestrator::new(cfg.clone())
        .store(store)
        .cell_budget(budget)
        .execute(&|_| {});
    let store = match first {
        Err(StudyError::Incomplete {
            completed,
            total: t,
        }) => {
            assert_eq!(t, total);
            assert_eq!(completed, budget, "budget caps executed cells");
            temp_store_reopen("resume")
        }
        other => panic!("expected Incomplete, got {other:?}"),
    };
    assert_eq!(
        std::fs::read_dir(store.root().join("cells"))
            .unwrap()
            .count(),
        budget,
        "interrupted run persisted exactly its budget's worth of cells"
    );

    // Second invocation: same config, same store, no budget. The cells
    // from the first run must be served from the store, not re-executed.
    let resumed = Orchestrator::new(cfg.clone()).store(store);
    let report = resumed.execute(&|_| {}).expect("resumed study completes");
    assert_eq!(
        report.store_hits, budget,
        "every previously-completed cell came from the store"
    );
    assert_eq!(
        report.executed,
        total - budget,
        "only the remaining cells executed"
    );
    let store = resumed.result_store().expect("store attached");
    assert_eq!(store.hits() as usize, budget);
    assert_eq!(report.results, uninterrupted, "resume is bit-identical");

    // Third invocation, fully warm: zero campaigns execute.
    let warm = Orchestrator::new(cfg)
        .store(temp_store_reopen("resume"))
        .cell_workers(3)
        .execute(&|_| {})
        .expect("warm study");
    assert_eq!(warm.executed, 0, "a warm re-run executes no campaigns");
    assert_eq!(warm.store_hits, total);
    assert_eq!(warm.results, uninterrupted);

    std::fs::remove_dir_all(
        std::env::temp_dir().join(format!("softerr-sched-test-resume-{}", std::process::id())),
    )
    .ok();
}

/// Reopens the tagged store without wiping it (fresh counters, same disk).
fn temp_store_reopen(tag: &str) -> ResultStore {
    ResultStore::open(
        std::env::temp_dir().join(format!("softerr-sched-test-{tag}-{}", std::process::id())),
    )
    .expect("store reopens")
}

#[test]
fn store_is_invalidated_by_any_config_change() {
    // A store warmed at one configuration must not serve a different one:
    // change the seed and every cell re-executes.
    let store = temp_store("invalidate");
    let root = store.root().to_path_buf();
    let cold = Orchestrator::new(small_config(1))
        .store(store)
        .execute(&|_| {})
        .expect("cold run");
    assert_eq!(cold.store_hits, 0);

    let other_seed = Orchestrator::new(small_config(2))
        .store(ResultStore::open(&root).expect("reopen"))
        .execute(&|_| {})
        .expect("different-seed run");
    assert_eq!(
        other_seed.store_hits, 0,
        "a different seed must miss the store, not reuse stale cells"
    );
    assert_eq!(other_seed.executed, other_seed.cells);
    std::fs::remove_dir_all(root).ok();
}

#[test]
fn refresh_reexecutes_but_still_persists() {
    // `--fresh` semantics: reads are skipped, writes still happen.
    let store = temp_store("refresh");
    let root = store.root().to_path_buf();
    Orchestrator::new(small_config(3))
        .store(store)
        .execute(&|_| {})
        .expect("warm-up run");

    let fresh = Orchestrator::new(small_config(3))
        .store(ResultStore::open(&root).expect("reopen"))
        .refresh(true)
        .execute(&|_| {})
        .expect("refresh run");
    assert_eq!(fresh.store_hits, 0, "refresh must not read the store");
    assert_eq!(
        fresh.executed, fresh.cells,
        "refresh re-executes every cell"
    );
    std::fs::remove_dir_all(root).ok();
}
