//! End-to-end forensics guarantees, on both paper machines:
//!
//! * a recorded campaign yields exactly one [`FaultRecord`] per injection,
//!   in fault order, and the per-class tallies of those records match the
//!   aggregate [`CampaignResult`] bit-for-bit;
//! * every non-Masked record (SDC/Crash/Timeout/Assert) carries a detection
//!   latency and a first-divergence site anchored at the injection cycle;
//! * records and the run manifest survive a JSONL round-trip;
//! * the simulator's microarchitectural counters are off by default, do not
//!   perturb execution when on, and their occupancy histograms account for
//!   every cycle.

use softerr::{
    CampaignConfig, ClassCounts, Compiler, FaultClass, FaultRecord, Injector, MachineConfig,
    OptLevel, RunManifest, SamplingPlan, Sim, Structure,
};

/// Mixed workload: ALU loops, memory traffic, and data-dependent branches,
/// so register-file faults can land in live and dead state alike.
const SOURCE: &str = "
    int tab[24];
    void main() {
        for (int i = 0; i < 24; i = i + 1) tab[i] = i * 5 - 7;
        int acc = 0;
        for (int i = 0; i < 24; i = i + 1) {
            if (tab[i] > 20) acc = acc + tab[i];
            else acc = acc - 1;
        }
        out(acc);
    }";

fn tally(records: &[FaultRecord]) -> ClassCounts {
    let mut counts = ClassCounts::default();
    for r in records {
        counts.record(r.class);
    }
    counts
}

#[test]
fn records_match_aggregate_on_both_paper_machines() {
    for machine in MachineConfig::paper_machines() {
        let compiled = Compiler::new(machine.profile, OptLevel::O2)
            .compile(SOURCE)
            .expect("workload compiles");
        let injector = Injector::new(&machine, &compiled.program).expect("golden run");
        // Seed picked so the uniform sampler lands at least one visible
        // (SDC/Crash) fault on each paper machine — keeps the divergence
        // assertions below non-vacuous.
        let cfg = CampaignConfig {
            plan: SamplingPlan::fixed(60),
            seed: 13,
            threads: 2,
            checkpoint: true,
        };
        let output = injector
            .run(Structure::RegFile, &cfg)
            .records(true)
            .execute();
        let (result, records) = (output.result, output.records.expect("records requested"));

        // One record per sampled fault, reported in sample order.
        assert_eq!(
            records.len() as u64,
            cfg.plan.injections(),
            "{}",
            machine.name
        );
        // The records ARE the campaign: identical per-class tallies.
        assert_eq!(tally(&records), result.counts, "{}", machine.name);

        let golden_cycles = injector.golden().cycles;
        for r in &records {
            assert_eq!(r.spec.structure, Structure::RegFile);
            assert_eq!(r.golden_cycles, golden_cycles);
            assert!(
                r.end_cycle >= r.spec.cycle,
                "{}: verdict before injection: {r:?}",
                machine.name
            );
            if r.class == FaultClass::Masked {
                continue;
            }
            // Every visible fault must name where it first left the golden
            // trajectory — at the injection cycle, by construction.
            let site = r.first_divergence.as_ref().unwrap_or_else(|| {
                panic!(
                    "{}: {:?} record without divergence: {r:?}",
                    machine.name, r.class
                )
            });
            assert_eq!(site.cycle, r.spec.cycle, "{}", machine.name);
            assert!(!site.component.is_empty(), "{}", machine.name);
            assert_eq!(r.detect_latency_cycles(), r.end_cycle - r.spec.cycle);
        }
        // The sampler hits live state often enough that the assertion above
        // is exercised on every machine, not vacuously true.
        assert!(
            records.iter().any(|r| r.class != FaultClass::Masked),
            "{}: campaign produced no visible faults",
            machine.name
        );
    }
}

#[test]
fn records_and_manifest_roundtrip_through_jsonl() {
    let machine = MachineConfig::cortex_a72();
    let compiled = Compiler::new(machine.profile, OptLevel::O2)
        .compile(SOURCE)
        .expect("workload compiles");
    let injector = Injector::new(&machine, &compiled.program).expect("golden run");
    let cfg = CampaignConfig {
        plan: SamplingPlan::fixed(20),
        seed: 3,
        threads: 1,
        checkpoint: true,
    };
    let manifest = RunManifest::new(&machine.name, &machine, &cfg);
    let records = injector
        .run(Structure::RegFile, &cfg)
        .records(true)
        .execute()
        .records
        .expect("records requested");

    // A records file is one manifest line followed by one line per fault.
    let mut stream = vec![serde_json::to_string(&manifest).unwrap()];
    stream.extend(records.iter().map(|r| serde_json::to_string(r).unwrap()));
    assert_eq!(stream.len(), 21);

    let manifest_back: RunManifest = serde_json::from_str(&stream[0]).unwrap();
    assert_eq!(manifest_back.machine, machine.name);
    assert_eq!(manifest_back.config_hash, manifest.config_hash);
    for (line, original) in stream[1..].iter().zip(&records) {
        let back: FaultRecord = serde_json::from_str(line).unwrap();
        assert_eq!(&back, original);
    }
}

#[test]
fn counters_are_opt_in_and_do_not_perturb_execution() {
    for machine in MachineConfig::paper_machines() {
        let compiled = Compiler::new(machine.profile, OptLevel::O2)
            .compile(SOURCE)
            .expect("workload compiles");

        let mut plain = Sim::new(&machine, &compiled.program);
        let plain_outcome = plain.run(1_000_000);
        assert!(plain.counters().is_none(), "counters must be opt-in");

        let mut counted = Sim::new(&machine, &compiled.program);
        counted.enable_counters();
        let counted_outcome = counted.run(1_000_000);
        assert_eq!(plain_outcome, counted_outcome, "{}", machine.name);
        assert!(plain.state_eq(&counted), "{}", machine.name);

        let c = counted.counters().expect("counters were enabled");
        assert_eq!(c.cycles, counted.cycle());
        assert_eq!(c.committed, counted.retired());
        assert!(c.ipc() > 0.0);
        // Occupancy histograms sample every structure once per cycle.
        assert_eq!(c.occupancy.len(), 5);
        for h in &c.occupancy {
            assert_eq!(h.cycles(), c.cycles, "{}: {}", machine.name, h.name);
            assert!(h.peak() <= h.capacity, "{}: {}", machine.name, h.name);
        }
        // The program branches, so branch-direction counters must move.
        assert!(c.branches > 0, "{}", machine.name);
    }
}
